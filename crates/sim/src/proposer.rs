//! Event-driven virtual-time simulation of the OCC-WSI proposer.
//!
//! `k` virtual threads share a pending pool, a multi-version state and a
//! reserve table — exactly the structures of Algorithm 1 — but time advances
//! on virtual clocks: executing a transaction costs its gas plus dispatch
//! overhead, and each commit serializes through a commit-section cost. The
//! EVM executions are *real* (full interpreter runs against real snapshots),
//! so abort patterns are the true WSI abort patterns of the workload, not a
//! statistical model.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use blockpilot_core::CommitPath;
use bp_evm::{execute_transaction, BlockEnv, MvSnapshot, Transaction, TxError};
use bp_state::{MultiVersionState, WorldState};
use bp_txpool::TxPool;
use bp_types::{AccessKey, Gas};

use crate::CostModel;

/// Which commit-time validation rule the simulated proposer applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ValidationRule {
    /// Write-snapshot isolation (the paper's OCC-WSI): abort only when a
    /// *read* key was overwritten after the snapshot. Blind write-write
    /// overlap commits.
    #[default]
    Wsi,
    /// Classic backward OCC validation: abort when any read **or written**
    /// key was touched by a later-committed writer (the ablation baseline).
    ClassicOcc,
}

/// Result of one simulated proposal run.
#[derive(Clone, Copy, Debug)]
pub struct ProposerSimResult {
    /// Virtual time at which the last commit finished.
    pub makespan: Gas,
    /// Sum of committed execution gas — the serial-execution time.
    pub serial_gas: Gas,
    /// Transactions committed.
    pub committed: usize,
    /// Executions that failed WSI validation and re-ran.
    pub aborts: u64,
    /// serial_gas / makespan.
    pub speedup: f64,
}

struct Event {
    finish: Gas,
    thread: usize,
    tx: Transaction,
    snapshot: u64,
    gas_used: Gas,
    // None: execution failed with a not-yet-eligible nonce (cheap probe).
    outcome: Option<ExecOutcome>,
}

struct ExecOutcome {
    reads: Vec<AccessKey>,
    writes: bp_types::WriteSet,
    deployed: Vec<(bp_types::Address, Arc<Vec<u8>>)>,
}

struct Sim<'a> {
    env: &'a BlockEnv,
    model: &'a CostModel,
    rule: ValidationRule,
    path: CommitPath,
    // The shared commit resource: virtual time at which the commit-sequence
    // lock next becomes free. CoarseLock occupies it for the whole
    // commit_sync; TwoPhase only for the commit_admit slice.
    commit_free_at: Gas,
    // TwoPhase only: virtual time at which every allocated version is fully
    // published (Phase B done). A snapshot taken earlier waits on the
    // visibility gate until then.
    snapshot_ready_at: Gas,
    mv: MultiVersionState,
    pool: TxPool,
    reserve: HashMap<AccessKey, u64>,
    committed_version: u64,
    // Execution-cost multiplier (per-mille): state-access contention from
    // the other `threads - 1` workers.
    contention_permille: u64,
    heap: BinaryHeap<Reverse<(Gas, usize, u64)>>,
    payloads: HashMap<u64, Event>,
    event_seq: u64,
    // Threads with no in-flight event, with the time they became free.
    idle: Vec<(usize, Gas)>,
    aborts: u64,
    commits: usize,
    serial_gas: Gas,
    makespan: Gas,
}

impl Sim<'_> {
    /// Tries to start the next eligible transaction on `thread` at time
    /// `at`; parks the thread as idle if the pool has nothing eligible.
    fn start_or_idle(&mut self, thread: usize, at: Gas) {
        // Two-phase: the snapshot version may still be publishing (Phase B);
        // the reader parks on the visibility gate until it is.
        let at = match self.path {
            CommitPath::TwoPhase => at.max(self.snapshot_ready_at),
            CommitPath::CoarseLock => at,
        };
        loop {
            let Some(tx) = self.pool.pop() else {
                self.idle.push((thread, at));
                return;
            };
            let snapshot = self.committed_version;
            let view = MvSnapshot::new(&self.mv, snapshot);
            let (gas_used, outcome) = match execute_transaction(&view, self.env, &tx) {
                Ok(result) => (
                    result.receipt.gas_used,
                    Some(ExecOutcome {
                        reads: result.rw.reads.keys().copied().collect(),
                        writes: result.rw.writes,
                        deployed: result.deployed.into_iter().collect(),
                    }),
                ),
                Err(TxError::BadNonce { expected, got }) if got > expected => (1_000, None),
                Err(_) => {
                    // Permanently invalid: discard and try the next.
                    self.pool.discard(&tx);
                    continue;
                }
            };
            let exec_cost = gas_used * self.contention_permille / 1000;
            let finish = at + self.model.per_tx_dispatch + exec_cost;
            self.event_seq += 1;
            self.heap.push(Reverse((finish, thread, self.event_seq)));
            self.payloads.insert(
                self.event_seq,
                Event {
                    finish,
                    thread,
                    tx,
                    snapshot,
                    gas_used,
                    outcome,
                },
            );
            return;
        }
    }

    /// Wakes all idle threads at time `now` (a commit may have made new
    /// transactions eligible).
    fn wake_idle(&mut self, now: Gas) {
        let mut idle = std::mem::take(&mut self.idle);
        idle.sort_unstable();
        for (thread, avail) in idle {
            self.start_or_idle(thread, avail.max(now));
        }
    }
}

/// Simulates proposing one block from `txs` on `threads` virtual threads.
///
/// Deterministic: the same inputs produce the same schedule, commit order,
/// abort count and makespan.
pub fn simulate_proposer(
    base: &WorldState,
    env: &BlockEnv,
    txs: &[Transaction],
    threads: usize,
    model: &CostModel,
) -> ProposerSimResult {
    simulate_proposer_with_rule(base, env, txs, threads, model, ValidationRule::Wsi)
}

/// [`simulate_proposer`] with an explicit commit-validation rule (used by
/// the WSI-vs-OCC ablation).
pub fn simulate_proposer_with_rule(
    base: &WorldState,
    env: &BlockEnv,
    txs: &[Transaction],
    threads: usize,
    model: &CostModel,
    rule: ValidationRule,
) -> ProposerSimResult {
    simulate_proposer_configured(base, env, txs, threads, model, rule, CommitPath::default())
}

/// [`simulate_proposer`] with an explicit validation rule **and** commit
/// path — the two-phase-vs-coarse-lock A/B (`proposer_baseline` in
/// bp-bench).
pub fn simulate_proposer_configured(
    base: &WorldState,
    env: &BlockEnv,
    txs: &[Transaction],
    threads: usize,
    model: &CostModel,
    rule: ValidationRule,
    path: CommitPath,
) -> ProposerSimResult {
    assert!(threads > 0);
    let base = Arc::new(base.snapshot());
    let pool = TxPool::new();
    for tx in txs {
        pool.add(tx.clone());
    }
    let mut sim = Sim {
        env,
        model,
        rule,
        path,
        commit_free_at: 0,
        snapshot_ready_at: 0,
        mv: MultiVersionState::new(base, threads),
        pool,
        reserve: HashMap::new(),
        committed_version: 0,
        contention_permille: 1000 + model.state_contention_permille * (threads as u64 - 1),
        heap: BinaryHeap::new(),
        payloads: HashMap::new(),
        event_seq: 0,
        idle: Vec::new(),
        aborts: 0,
        commits: 0,
        serial_gas: 0,
        makespan: 0,
    };

    for thread in 0..threads {
        sim.start_or_idle(thread, 0);
    }

    while let Some(Reverse((_, _, seq))) = sim.heap.pop() {
        let event = sim.payloads.remove(&seq).expect("payload exists");
        let now = event.finish;
        match event.outcome {
            Some(outcome) => {
                // Validation at commit time (Algorithm 1 DetectConflict).
                let key_stale =
                    |k: &AccessKey| sim.reserve.get(k).copied().unwrap_or(0) > event.snapshot;
                let stale = match sim.rule {
                    ValidationRule::Wsi => outcome.reads.iter().any(key_stale),
                    ValidationRule::ClassicOcc => {
                        outcome.reads.iter().any(key_stale) || outcome.writes.keys().any(key_stale)
                    }
                };
                if stale {
                    // Validation happens under the commit-sequence lock on
                    // both paths: a failed one still occupies the commit
                    // resource for the admit slice.
                    sim.aborts += 1;
                    let abort_done = now.max(sim.commit_free_at) + model.commit_admit;
                    sim.commit_free_at = abort_done;
                    sim.pool.push_back(&event.tx);
                    sim.start_or_idle(event.thread, abort_done);
                    continue;
                }
                // Commit: acquire the (possibly contended) commit lock.
                sim.committed_version += 1;
                sim.mv.commit_writes(&outcome.writes, sim.committed_version);
                for (addr, code) in outcome.deployed {
                    sim.mv.install_code(addr, code);
                }
                for key in outcome.writes.keys() {
                    sim.reserve.insert(*key, sim.committed_version);
                }
                sim.commits += 1;
                sim.serial_gas += event.gas_used;
                let lock_at = now.max(sim.commit_free_at);
                let commit_done = match sim.path {
                    // Coarse lock: the whole commit section serializes
                    // through the shared resource; the version only becomes
                    // discoverable fully published, so readers never wait.
                    CommitPath::CoarseLock => {
                        let done = lock_at + model.commit_sync;
                        sim.commit_free_at = done;
                        done
                    }
                    // Two-phase: only the admit slice holds the lock; the
                    // publish remainder runs on the committing thread's own
                    // clock, and snapshots taken before it lands wait on the
                    // visibility gate.
                    CommitPath::TwoPhase => {
                        let admit_done = lock_at + model.commit_admit;
                        sim.commit_free_at = admit_done;
                        let publish_done =
                            admit_done + model.commit_sync.saturating_sub(model.commit_admit);
                        sim.snapshot_ready_at = sim.snapshot_ready_at.max(publish_done);
                        publish_done
                    }
                };
                sim.makespan = sim.makespan.max(commit_done);
                sim.pool.commit(&event.tx);
                // The committing thread resumes after its commit work; idle
                // threads may find newly eligible work now.
                sim.start_or_idle(event.thread, commit_done);
                sim.wake_idle(now);
            }
            None => {
                // Nonce probe: prerequisite not committed when we started.
                // Re-queue and idle until the next commit wakes us.
                sim.pool.push_back(&event.tx);
                sim.idle.push((event.thread, now));
            }
        }
    }

    ProposerSimResult {
        makespan: sim.makespan,
        serial_gas: sim.serial_gas,
        committed: sim.commits,
        aborts: sim.aborts,
        speedup: if sim.makespan == 0 {
            1.0
        } else {
            sim.serial_gas as f64 / sim.makespan as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_evm::contracts;
    use bp_types::{Address, U256};

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded(n: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=n {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    #[test]
    fn deterministic() {
        let base = funded(20);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=10u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 10), U256::ONE, 0, i))
            .collect();
        let a = simulate_proposer(&base, &env, &txs, 4, &CostModel::default());
        let b = simulate_proposer(&base, &env, &txs, 4, &CostModel::default());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.committed, b.committed);
    }

    #[test]
    fn all_txs_commit() {
        let base = funded(20);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=10u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 10), U256::ONE, 0, i))
            .collect();
        let r = simulate_proposer(&base, &env, &txs, 4, &CostModel::default());
        assert_eq!(r.committed, 10);
        assert_eq!(r.serial_gas, 210_000);
        assert_eq!(r.aborts, 0, "disjoint transfers never abort");
    }

    #[test]
    fn thread_scaling_is_sublinear_under_contention() {
        let base = funded(80);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=32u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 40), U256::ONE, 0, 1))
            .collect();
        let model = CostModel::default();
        let t1 = simulate_proposer(&base, &env, &txs, 1, &model);
        let t4 = simulate_proposer(&base, &env, &txs, 4, &model);
        let t16 = simulate_proposer(&base, &env, &txs, 16, &model);
        assert!(t4.makespan < t1.makespan);
        assert!(t16.makespan <= t4.makespan);
        assert!(t4.speedup > 1.5, "4 threads give {:.2}", t4.speedup);
        // Contention keeps scaling sublinear: 16 threads on cheap transfers
        // stay well under the thread count.
        assert!(t16.speedup < 8.0, "16 threads give {:.2}", t16.speedup);
    }

    #[test]
    fn hotspot_causes_aborts_and_limits_speedup() {
        let mut base = funded(40);
        let c = addr(100);
        base.set_code(c, contracts::counter());
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=16u64)
            .map(|i| Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            })
            .collect();
        let model = CostModel::default();
        let r = simulate_proposer(&base, &env, &txs, 8, &model);
        assert_eq!(r.committed, 16);
        assert!(r.aborts > 0, "contended counter must abort sometimes");
        // All txs conflict: speedup must stay well below the thread count.
        assert!(r.speedup < 4.0, "speedup {:.2}", r.speedup);
    }

    #[test]
    fn nonce_chains_commit_in_order() {
        let base = funded(5);
        let env = BlockEnv::default();
        let txs: Vec<_> = (0..6u64)
            .map(|n| Transaction::transfer(addr(1), addr(2), U256::ONE, n, 1))
            .collect();
        let r = simulate_proposer(&base, &env, &txs, 4, &CostModel::default());
        assert_eq!(r.committed, 6);
        // A pure chain is inherently serial: overheads push speedup below 1.
        assert!(r.speedup <= 1.0 + 1e-9);
    }

    #[test]
    fn single_thread_speedup_is_sub_unity() {
        let base = funded(10);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=5u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 5), U256::ONE, 0, 1))
            .collect();
        let r = simulate_proposer(&base, &env, &txs, 1, &CostModel::default());
        // One virtual thread pays dispatch + commit overhead on top of the
        // serial execution time.
        assert!(r.speedup < 1.0);
        assert_eq!(r.committed, 5);
    }

    #[test]
    fn classic_occ_aborts_at_least_as_often_as_wsi() {
        let mut base = funded(40);
        let c = addr(100);
        base.set_code(c, contracts::counter());
        let env = BlockEnv::default();
        let mut txs: Vec<_> = (1..=12u64)
            .map(|i| Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            })
            .collect();
        for i in 13..=24u64 {
            txs.push(Transaction::transfer(
                addr(i),
                addr(i + 12),
                U256::ONE,
                0,
                1,
            ));
        }
        let model = CostModel::default();
        let wsi = simulate_proposer_with_rule(&base, &env, &txs, 8, &model, ValidationRule::Wsi);
        let occ =
            simulate_proposer_with_rule(&base, &env, &txs, 8, &model, ValidationRule::ClassicOcc);
        assert_eq!(wsi.committed, occ.committed);
        assert!(
            occ.aborts >= wsi.aborts,
            "occ {} < wsi {}",
            occ.aborts,
            wsi.aborts
        );
    }

    #[test]
    fn two_phase_outscales_the_coarse_lock() {
        // Commit-bound convoy: identical cheap transfers finish in waves, so
        // every wave's commits pile up on the commit resource. Coarse holds
        // it for the full section; two-phase only for the admit slice.
        let base = funded(200);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=96u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 100), U256::ONE, 0, 1))
            .collect();
        let model = CostModel::default();
        for threads in [8usize, 16] {
            let tp = simulate_proposer_configured(
                &base,
                &env,
                &txs,
                threads,
                &model,
                ValidationRule::Wsi,
                CommitPath::TwoPhase,
            );
            let cl = simulate_proposer_configured(
                &base,
                &env,
                &txs,
                threads,
                &model,
                ValidationRule::Wsi,
                CommitPath::CoarseLock,
            );
            assert_eq!(tp.committed, cl.committed);
            assert_eq!(tp.committed, 96);
            assert!(
                tp.makespan < cl.makespan,
                "{threads} threads: two-phase {} !< coarse {}",
                tp.makespan,
                cl.makespan
            );
        }
    }

    #[test]
    fn commit_paths_agree_on_one_thread() {
        // Without concurrency the whole section runs back-to-back either
        // way: identical makespan, schedule and abort count.
        let base = funded(20);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=8u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 10), U256::ONE, 0, 1))
            .collect();
        let model = CostModel::default();
        let tp = simulate_proposer_configured(
            &base,
            &env,
            &txs,
            1,
            &model,
            ValidationRule::Wsi,
            CommitPath::TwoPhase,
        );
        let cl = simulate_proposer_configured(
            &base,
            &env,
            &txs,
            1,
            &model,
            ValidationRule::Wsi,
            CommitPath::CoarseLock,
        );
        assert_eq!(tp.makespan, cl.makespan);
        assert_eq!(tp.aborts, cl.aborts);
    }

    #[test]
    fn empty_input() {
        let base = funded(1);
        let r = simulate_proposer(&base, &BlockEnv::default(), &[], 4, &CostModel::default());
        assert_eq!(r.committed, 0);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.speedup, 1.0);
    }
}
