//! Event-driven virtual-time simulation of the Block-STM proposer.
//!
//! The preset order fixes each transaction's *final* read/write footprint
//! up front (one real serial execution supplies it), so the simulator can
//! derive the true dependency structure — for every read key, the highest
//! earlier writer — and replay the collaborative scheduler's behaviour on
//! `k` virtual threads:
//!
//! * a first execution that starts before all of its dependencies have
//!   finalized reads a stale (or ESTIMATE-fallback) value, fails read-set
//!   validation, and re-runs — one wasted execution plus a validation, just
//!   like the real engine;
//! * after the abort the transaction *suspends on the ESTIMATE marker* and
//!   only re-executes once every dependency has its final value published,
//!   which is exactly what bounds Block-STM's wasted work to O(1)
//!   re-executions per transaction under contention — the property that
//!   separates it from retry-until-clean OCC on a hot key;
//! * there is **no commit-section lock**: validations ride on the
//!   validating worker's own clock ([`CostModel::stm_validate`]) and the
//!   commit watermark is free bookkeeping.
//!
//! Deterministic: same inputs, same schedule, same abort counts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use bp_evm::{execute_transaction, BlockEnv, Transaction, WorldView};
use bp_state::WorldState;
use bp_types::{AccessKey, FxHashMap, Gas};

use crate::{CostModel, ProposerSimResult};

/// Per-transaction facts derived from the serial oracle run.
struct TxFacts {
    gas: Gas,
    /// Highest-index earlier transaction writing any key this one reads
    /// (`None` when the transaction only reads base state).
    last_dep: Option<usize>,
}

/// Simulates proposing one block of `txs` (already in preset order) on
/// `threads` virtual threads under the Block-STM engine.
///
/// Transactions that fail to execute serially (invalid nonce/funds) are
/// discarded, mirroring the real engine's handling of unexecutable
/// candidates.
pub fn simulate_proposer_block_stm(
    base: &WorldState,
    env: &BlockEnv,
    txs: &[Transaction],
    threads: usize,
    model: &CostModel,
) -> ProposerSimResult {
    assert!(threads > 0);
    let base = Arc::new(base.snapshot());

    // Serial oracle: final footprints fix the dependency structure.
    let mut world = base.snapshot();
    let mut facts: Vec<TxFacts> = Vec::with_capacity(txs.len());
    let mut last_writer: FxHashMap<AccessKey, usize> = FxHashMap::default();
    for tx in txs {
        let result = {
            let view = WorldView::new(&world);
            execute_transaction(&view, env, tx)
        };
        let Ok(result) = result else {
            continue; // unexecutable candidate: the engine discards it
        };
        let idx = facts.len();
        let last_dep = result
            .rw
            .reads
            .keys()
            .filter_map(|k| last_writer.get(k).copied())
            .max();
        for key in result.rw.writes.keys() {
            last_writer.insert(*key, idx);
        }
        world.apply_writes(&result.rw.writes);
        facts.push(TxFacts {
            gas: result.receipt.gas_used,
            last_dep,
        });
    }

    let n = facts.len();
    if n == 0 {
        return ProposerSimResult {
            makespan: 0,
            serial_gas: 0,
            committed: 0,
            aborts: 0,
            speedup: 1.0,
        };
    }

    // finalized[i]: virtual time at which tx i's final incarnation has
    // executed and validated (its writes are the final values).
    let mut finalized: Vec<Option<Gas>> = vec![None; n];
    let ready_at = |i: usize, finalized: &[Option<Gas>]| -> Option<Gas> {
        match facts[i].last_dep {
            None => Some(0),
            Some(dep) => finalized[dep],
        }
    };

    // Worker pool: min-heap of (free_at, thread). Tasks are claimed in
    // preset order; a suspended retry only becomes claimable once its
    // dependency finalizes, exactly like the scheduler's resume path.
    let mut workers: BinaryHeap<Reverse<(Gas, usize)>> =
        (0..threads.min(n)).map(|t| Reverse((0, t))).collect();
    let mut first_attempt: std::collections::VecDeque<usize> = (0..n).collect();
    // (tx, earliest start). Kept sorted by tx index for determinism.
    let mut retries: Vec<(usize, Gas)> = Vec::new();
    let mut aborts = 0u64;
    let mut makespan = 0;
    let mut serial_gas = 0;

    while !first_attempt.is_empty() || !retries.is_empty() {
        let Reverse((now, thread)) = workers.pop().expect("threads > 0");

        // Prefer the lowest-index claimable retry whose dependency has
        // finalized and whose wake-up time has passed; else a first
        // attempt; else fast-forward this worker to the next wake-up.
        let claim = retries
            .iter()
            .position(|&(_, at)| at <= now)
            .map(|pos| retries.remove(pos));
        if let Some((tx, _)) = claim {
            // Final incarnation: all dependencies are final, so this
            // execution reads final values and validates clean.
            let done = now + model.per_tx_dispatch + facts[tx].gas + model.stm_validate;
            finalized[tx] = Some(done);
            serial_gas += facts[tx].gas;
            makespan = makespan.max(done);
            // A finalize may unblock suspended dependents.
            let mut resumed: Vec<(usize, Gas)> = Vec::new();
            retries.retain_mut(|entry| {
                if entry.1 == Gas::MAX {
                    if let Some(at) = ready_at(entry.0, &finalized) {
                        resumed.push((entry.0, at));
                        return false;
                    }
                }
                true
            });
            retries.extend(resumed);
            retries.sort_unstable();
            workers.push(Reverse((done, thread)));
            continue;
        }

        if let Some(tx) = first_attempt.pop_front() {
            match ready_at(tx, &finalized) {
                Some(at) if at <= now => {
                    // Dependencies final before we start: one clean pass.
                    let done = now + model.per_tx_dispatch + facts[tx].gas + model.stm_validate;
                    finalized[tx] = Some(done);
                    serial_gas += facts[tx].gas;
                    makespan = makespan.max(done);
                    let mut resumed: Vec<(usize, Gas)> = Vec::new();
                    retries.retain_mut(|entry| {
                        if entry.1 == Gas::MAX {
                            if let Some(at) = ready_at(entry.0, &finalized) {
                                resumed.push((entry.0, at));
                                return false;
                            }
                        }
                        true
                    });
                    retries.extend(resumed);
                    retries.sort_unstable();
                    workers.push(Reverse((done, thread)));
                }
                ready => {
                    // Premature execution: full run on stale reads, failed
                    // validation, then suspend on the dependency's
                    // ESTIMATE marker until it finalizes.
                    aborts += 1;
                    let wasted = now + model.per_tx_dispatch + facts[tx].gas + model.stm_validate;
                    let wake = match ready {
                        Some(at) => at,   // dep finalized mid-flight
                        None => Gas::MAX, // suspended until the dep lands
                    };
                    retries.push((tx, wake));
                    retries.sort_unstable();
                    workers.push(Reverse((wasted, thread)));
                }
            }
            continue;
        }

        // Nothing claimable now: fast-forward to the earliest wake-up.
        let next_wake = retries
            .iter()
            .map(|&(_, at)| at)
            .filter(|&at| at > now && at != Gas::MAX)
            .min();
        match next_wake {
            Some(at) => workers.push(Reverse((at, thread)))
            ,
            // Only Gas::MAX suspensions remain: their deps are still
            // in-flight on other workers; park this worker just past the
            // current horizon so finalizations can resume them.
            None => {
                if retries.is_empty() {
                    continue; // drained: drop the worker
                }
                workers.push(Reverse((now + 1, thread)));
            }
        }
    }

    ProposerSimResult {
        makespan,
        serial_gas,
        committed: n,
        aborts,
        speedup: if makespan == 0 {
            1.0
        } else {
            serial_gas as f64 / makespan as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_evm::contracts;
    use bp_types::{Address, U256};

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn funded(n: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=n {
            w.set_balance(addr(i), U256::from(1_000_000_000u64));
        }
        w
    }

    #[test]
    fn deterministic() {
        let base = funded(20);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=10u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 10), U256::ONE, 0, i))
            .collect();
        let a = simulate_proposer_block_stm(&base, &env, &txs, 4, &CostModel::default());
        let b = simulate_proposer_block_stm(&base, &env, &txs, 4, &CostModel::default());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn disjoint_transfers_scale_and_never_abort() {
        let base = funded(80);
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=32u64)
            .map(|i| Transaction::transfer(addr(i), addr(i + 40), U256::ONE, 0, 1))
            .collect();
        let model = CostModel::default();
        let t1 = simulate_proposer_block_stm(&base, &env, &txs, 1, &model);
        let t8 = simulate_proposer_block_stm(&base, &env, &txs, 8, &model);
        assert_eq!(t1.committed, 32);
        assert_eq!(t1.aborts, 0);
        assert_eq!(t8.aborts, 0);
        assert!(t8.makespan < t1.makespan);
        assert!(t8.speedup > 4.0, "8 threads give {:.2}", t8.speedup);
    }

    #[test]
    fn hot_key_chain_aborts_at_most_once_per_tx() {
        let mut base = funded(40);
        let c = addr(100);
        base.set_code(c, contracts::counter());
        let env = BlockEnv::default();
        let txs: Vec<_> = (1..=16u64)
            .map(|i| Transaction {
                sender: addr(i),
                to: Some(c),
                value: U256::ZERO,
                nonce: 0,
                gas_limit: 200_000,
                gas_price: 1,
                data: vec![],
            })
            .collect();
        let r = simulate_proposer_block_stm(&base, &env, &txs, 8, &CostModel::default());
        assert_eq!(r.committed, 16);
        // ESTIMATE suspension bounds re-execution: at most one abort each.
        assert!(r.aborts <= 16, "aborts {}", r.aborts);
        // A fully serialized chain cannot beat serial execution.
        assert!(r.speedup <= 1.0 + 1e-9, "speedup {:.2}", r.speedup);
    }

    #[test]
    fn invalid_candidates_are_discarded() {
        let base = funded(5);
        let env = BlockEnv::default();
        let txs = vec![
            Transaction::transfer(addr(1), addr(2), U256::ONE, 0, 1),
            // Nonce 5 never becomes eligible: discarded by the oracle.
            Transaction::transfer(addr(2), addr(3), U256::ONE, 5, 1),
            Transaction::transfer(addr(3), addr(4), U256::ONE, 0, 1),
        ];
        let r = simulate_proposer_block_stm(&base, &env, &txs, 2, &CostModel::default());
        assert_eq!(r.committed, 2);
    }

    #[test]
    fn empty_input() {
        let base = funded(1);
        let r =
            simulate_proposer_block_stm(&base, &BlockEnv::default(), &[], 4, &CostModel::default());
        assert_eq!(r.committed, 0);
        assert_eq!(r.speedup, 1.0);
    }
}
