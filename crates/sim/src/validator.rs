//! Virtual-time model of single-block validation (Figures 7(a), 7(b), 8).
//!
//! The validator's wall time for one block decomposes into the preparation
//! cost (scheduling), the slowest lane's execution time, and the applier's
//! serial verification — with the applier pipelined against execution, so
//! only its excess over the execution makespan shows up.

use blockpilot_core::scheduler::Schedule;
use bp_block::BlockProfile;
use bp_types::Gas;

use crate::CostModel;

/// Result of one simulated single-block validation.
#[derive(Clone, Copy, Debug)]
pub struct ValidatorSimResult {
    /// Total virtual time: prepare + max(lane makespan, applier) (gas-time).
    pub makespan: Gas,
    /// Serial-execution time of the block (total gas).
    pub serial_gas: Gas,
    /// serial_gas / makespan.
    pub speedup: f64,
    /// Fraction of transactions in the largest dependency subgraph.
    pub largest_subgraph_ratio: f64,
}

/// Computes the virtual-time cost of validating one block with the given
/// (already computed) schedule.
pub fn simulate_validator(
    schedule: &Schedule,
    profile: &BlockProfile,
    model: &CostModel,
) -> ValidatorSimResult {
    let n: usize = schedule.lanes.iter().map(Vec::len).sum();
    let serial_gas: Gas = profile.entries.iter().map(|e| e.gas_used).sum();
    let prepare = model.prepare_per_tx * n as u64;
    let lane_makespan: Gas = schedule
        .lanes
        .iter()
        .map(|lane| {
            lane.iter()
                .map(|&i| profile.entries[i].gas_used + model.per_tx_dispatch)
                .sum::<Gas>()
        })
        .max()
        .unwrap_or(0);
    let applier = model.applier_per_tx * n as u64;
    // The applier consumes lane results as they stream in; it only extends
    // the critical path by whatever exceeds the execution makespan, plus the
    // final transaction's verification.
    let exec_and_apply = lane_makespan.max(applier) + model.applier_per_tx.min(applier);
    let makespan = prepare + exec_and_apply;
    ValidatorSimResult {
        makespan,
        serial_gas,
        speedup: if makespan == 0 {
            1.0
        } else {
            serial_gas as f64 / makespan as f64
        },
        largest_subgraph_ratio: schedule.largest_subgraph_ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockpilot_core::scheduler::{ConflictGranularity, Scheduler};
    use bp_block::TxProfile;
    use bp_types::{AccessKey, Address, RwSet, U256};

    fn entry(writes: &[u64], gas: Gas) -> TxProfile {
        let mut rw = RwSet::new();
        for &w in writes {
            rw.record_write(AccessKey::Balance(Address::from_index(w)), U256::ONE);
        }
        TxProfile::from_rw(&rw, gas)
    }

    fn model() -> CostModel {
        CostModel {
            per_tx_dispatch: 0,
            commit_sync: 0,
            commit_admit: 0,
            state_contention_permille: 0,
            prepare_per_tx: 0,
            applier_per_tx: 0,
            match_per_tx: 0,
            applier_block: 0,
            stm_validate: 0,
            block_switch: 0,
            applier_switch: 0,
        }
    }

    #[test]
    fn independent_txs_scale_linearly_with_zero_overhead() {
        let profile = BlockProfile {
            entries: (0..8).map(|i| entry(&[i + 1], 100)).collect(),
        };
        let schedule = Scheduler::new(ConflictGranularity::Account).schedule(&profile, 4);
        let r = simulate_validator(&schedule, &profile, &model());
        assert_eq!(r.serial_gas, 800);
        assert_eq!(r.makespan, 200); // 8 txs over 4 lanes
        assert!((r.speedup - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fully_conflicting_block_gets_no_speedup() {
        let profile = BlockProfile {
            entries: (0..6).map(|_| entry(&[1], 100)).collect(),
        };
        let schedule = Scheduler::new(ConflictGranularity::Account).schedule(&profile, 4);
        let r = simulate_validator(&schedule, &profile, &model());
        assert_eq!(r.makespan, 600);
        assert!((r.speedup - 1.0).abs() < 1e-9);
        assert!((r.largest_subgraph_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overheads_reduce_speedup() {
        let profile = BlockProfile {
            entries: (0..8).map(|i| entry(&[i + 1], 10_000)).collect(),
        };
        let schedule = Scheduler::new(ConflictGranularity::Account).schedule(&profile, 8);
        let zero = simulate_validator(&schedule, &profile, &model());
        let real = simulate_validator(&schedule, &profile, &CostModel::default());
        assert!(real.speedup < zero.speedup);
        assert!(real.makespan > zero.makespan);
    }

    #[test]
    fn applier_bottleneck_caps_wide_blocks() {
        // 64 tiny transactions, 64 lanes: execution is instant but the
        // applier's serial pass dominates.
        let profile = BlockProfile {
            entries: (0..64).map(|i| entry(&[i + 1], 10)).collect(),
        };
        let schedule = Scheduler::new(ConflictGranularity::Account).schedule(&profile, 64);
        let m = CostModel {
            applier_per_tx: 1_000,
            per_tx_dispatch: 0,
            prepare_per_tx: 0,
            commit_sync: 0,
            commit_admit: 0,
            state_contention_permille: 0,
            match_per_tx: 0,
            applier_block: 0,
            stm_validate: 0,
            block_switch: 0,
            applier_switch: 0,
        };
        let r = simulate_validator(&schedule, &profile, &m);
        assert!(r.makespan >= 64_000);
    }

    #[test]
    fn empty_block() {
        let profile = BlockProfile::default();
        let schedule = Scheduler::new(ConflictGranularity::Account).schedule(&profile, 4);
        let r = simulate_validator(&schedule, &profile, &CostModel::default());
        assert_eq!(r.makespan, 0);
        assert_eq!(r.speedup, 1.0);
    }
}
