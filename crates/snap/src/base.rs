//! The flat base layer: every account body and live storage slot of one
//! committed state, as key→value records.
//!
//! Two backings share one index structure:
//!
//! * **memory** — values held inline; used by tests and short-lived trees.
//! * **file** — an append-only record log (`flat.<gen>.log`); the in-memory
//!   index maps each key to its record's byte offset, and point reads
//!   `pread` the value back. Memory cost is O(keys), not O(bytes): code
//!   blobs and values live on disk.
//!
//! [`FlatBase::apply`] appends one batch of records (a folded
//! [`StateDelta`]) and fsyncs; durability of the new length is the caller's
//! to record (via [`crate::meta`]) — a torn tail past the recorded length
//! is truncated on open. When dead records outgrow live ones 4:1 the caller
//! is told to [`FlatBase::compact`], which rewrites live records into
//! `flat.<gen+1>.log`.
//!
//! Record formats (all integers big-endian):
//!
//! ```text
//! ACC_PUT  = 0x01 | addr(20) | nonce(8) | balance(32) | code_len(4) | code
//! ACC_DEL  = 0x02 | addr(20)
//! SLOT_PUT = 0x03 | addr(20) | slot(32) | value(32)
//! SLOT_DEL = 0x04 | addr(20) | slot(32)
//! ```

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bp_state::{BaseAccount, StateDelta};
use bp_types::{Address, H256, U256};

use crate::meta::flat_path;
use crate::SnapError;

const ACC_PUT: u8 = 0x01;
const ACC_DEL: u8 = 0x02;
const SLOT_PUT: u8 = 0x03;
const SLOT_DEL: u8 = 0x04;

/// Fixed bytes of an `ACC_PUT` before the code blob.
const ACC_PUT_HEAD: u64 = 1 + 20 + 8 + 32 + 4;
/// Size of an `ACC_DEL` record.
const ACC_DEL_SIZE: u64 = 1 + 20;
/// Size of a `SLOT_PUT` record.
const SLOT_PUT_SIZE: u64 = 1 + 20 + 32 + 32;
/// Size of a `SLOT_DEL` record.
const SLOT_DEL_SIZE: u64 = 1 + 20 + 32;

/// Where one account body lives.
#[derive(Clone, Debug)]
enum AcctEntry {
    Inline(BaseAccount),
    /// Record starts at `offset`; the code blob is `code_len` bytes.
    Disk {
        offset: u64,
        code_len: u32,
    },
}

/// Where one storage value lives.
#[derive(Clone, Copy, Debug)]
enum SlotEntry {
    Inline(U256),
    /// Record starts at `offset`; the value is the trailing 32 bytes.
    Disk {
        offset: u64,
    },
}

/// File-mode state.
#[derive(Debug)]
struct FileBacking {
    file: File,
    dir: PathBuf,
    /// Generation of `flat.<file_gen>.log`.
    file_gen: u64,
    /// Current (fsynced) length of the file.
    len: u64,
    /// Bytes occupied by records the index still points at.
    live: u64,
}

/// The flat base layer of one committed state.
#[derive(Debug)]
pub struct FlatBase {
    accounts: HashMap<Address, AcctEntry>,
    storage: HashMap<Address, HashMap<H256, SlotEntry>>,
    file: Option<FileBacking>,
    /// The state root this base answers reads for.
    root: H256,
    /// The block height of `root`.
    height: u64,
}

impl FlatBase {
    /// An empty in-memory base at the empty root.
    pub fn memory() -> Self {
        FlatBase {
            accounts: HashMap::new(),
            storage: HashMap::new(),
            file: None,
            root: bp_state::empty_root(),
            height: 0,
        }
    }

    /// Opens (or creates) the file-backed base `flat.<file_gen>.log` under
    /// `dir`, trusting exactly `flat_len` bytes: anything beyond is a torn
    /// tail from a crash and is truncated away. The index is rebuilt by
    /// replaying the records.
    pub fn open_file(
        dir: &Path,
        file_gen: u64,
        flat_len: u64,
        root: H256,
        height: u64,
    ) -> Result<Self, SnapError> {
        let path = flat_path(dir, file_gen);
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let actual = file.metadata()?.len();
        if actual < flat_len {
            return Err(SnapError::Corrupt(format!(
                "flat file shorter than durable length: {actual} < {flat_len}"
            )));
        }
        if actual > flat_len {
            file.set_len(flat_len)?;
        }
        let mut base = FlatBase {
            accounts: HashMap::new(),
            storage: HashMap::new(),
            file: Some(FileBacking {
                file,
                dir: dir.to_path_buf(),
                file_gen,
                len: flat_len,
                live: 0,
            }),
            root,
            height,
        };
        base.replay()?;
        Ok(base)
    }

    /// Rebuilds the index from the record log (file mode only).
    fn replay(&mut self) -> Result<(), SnapError> {
        let backing = self.file.as_ref().expect("replay requires file mode");
        let len = backing.len;
        let mut buf = vec![0u8; len as usize];
        read_exact_at(&backing.file, &mut buf, 0)?;
        let mut live = 0u64;
        let mut off = 0u64;
        let bytes = &buf[..];
        while off < len {
            let rec_start = off;
            let tag = bytes[off as usize];
            let need = |n: u64| -> Result<(), SnapError> {
                if off + n > len {
                    Err(SnapError::Corrupt(format!(
                        "flat record at {rec_start} overruns durable length {len}"
                    )))
                } else {
                    Ok(())
                }
            };
            match tag {
                ACC_PUT => {
                    need(ACC_PUT_HEAD)?;
                    let addr = read_addr(bytes, off + 1);
                    let code_len = u32::from_be_bytes(slice4(bytes, off + ACC_PUT_HEAD - 4)) as u64;
                    need(ACC_PUT_HEAD + code_len)?;
                    let size = ACC_PUT_HEAD + code_len;
                    live += size;
                    live -= self.evict_account(&addr);
                    self.accounts.insert(
                        addr,
                        AcctEntry::Disk {
                            offset: rec_start,
                            code_len: code_len as u32,
                        },
                    );
                    off += size;
                }
                ACC_DEL => {
                    need(ACC_DEL_SIZE)?;
                    let addr = read_addr(bytes, off + 1);
                    live -= self.evict_account(&addr);
                    self.accounts.remove(&addr);
                    off += ACC_DEL_SIZE;
                }
                SLOT_PUT => {
                    need(SLOT_PUT_SIZE)?;
                    let addr = read_addr(bytes, off + 1);
                    let slot = read_h256(bytes, off + 21);
                    live += SLOT_PUT_SIZE;
                    live -= self.evict_slot(&addr, &slot);
                    self.storage
                        .entry(addr)
                        .or_default()
                        .insert(slot, SlotEntry::Disk { offset: rec_start });
                    off += SLOT_PUT_SIZE;
                }
                SLOT_DEL => {
                    need(SLOT_DEL_SIZE)?;
                    let addr = read_addr(bytes, off + 1);
                    let slot = read_h256(bytes, off + 21);
                    live -= self.evict_slot(&addr, &slot);
                    if let Some(slots) = self.storage.get_mut(&addr) {
                        slots.remove(&slot);
                        if slots.is_empty() {
                            self.storage.remove(&addr);
                        }
                    }
                    off += SLOT_DEL_SIZE;
                }
                other => {
                    return Err(SnapError::Corrupt(format!(
                        "unknown flat record tag {other:#x} at {rec_start}"
                    )))
                }
            }
        }
        self.file.as_mut().unwrap().live = live;
        Ok(())
    }

    /// Bytes of the record an existing account entry occupies (0 if absent
    /// or inline).
    fn evict_account(&self, addr: &Address) -> u64 {
        match self.accounts.get(addr) {
            Some(AcctEntry::Disk { code_len, .. }) => ACC_PUT_HEAD + *code_len as u64,
            _ => 0,
        }
    }

    /// Bytes of the record an existing slot entry occupies.
    fn evict_slot(&self, addr: &Address, slot: &H256) -> u64 {
        match self.storage.get(addr).and_then(|s| s.get(slot)) {
            Some(SlotEntry::Disk { .. }) => SLOT_PUT_SIZE,
            _ => 0,
        }
    }

    /// The state root this base answers reads for.
    pub fn root(&self) -> H256 {
        self.root
    }

    /// The block height of [`FlatBase::root`].
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Current file generation (0 in memory mode).
    pub fn file_gen(&self) -> u64 {
        self.file.as_ref().map(|f| f.file_gen).unwrap_or(0)
    }

    /// Durable byte length of the flat log (0 in memory mode).
    pub fn flat_len(&self) -> u64 {
        self.file.as_ref().map(|f| f.len).unwrap_or(0)
    }

    /// Bytes occupied by live records (0 in memory mode).
    pub fn live_bytes(&self) -> u64 {
        self.file.as_ref().map(|f| f.live).unwrap_or(0)
    }

    /// Number of indexed keys (account bodies + storage slots).
    pub fn key_count(&self) -> usize {
        self.accounts.len() + self.storage.values().map(|s| s.len()).sum::<usize>()
    }

    /// Folds `delta` into the base, advancing it to `root` at `height`.
    /// File mode appends one batch of records and fsyncs them; the caller
    /// must then persist the new [`FlatBase::flat_len`] via the meta for
    /// the batch to become durable. Folds must move forward in height —
    /// rewinding would silently serve stale values for keys whose newest
    /// write lies between the two roots.
    pub fn apply(&mut self, delta: &StateDelta, root: H256, height: u64) -> Result<(), SnapError> {
        if height < self.height {
            return Err(SnapError::Corrupt(format!(
                "flat base fold rewinds height: {} < {}",
                height, self.height
            )));
        }
        match &mut self.file {
            None => {
                for (addr, acct) in &delta.accounts {
                    match acct {
                        Some(a) => {
                            self.accounts.insert(*addr, AcctEntry::Inline(a.clone()));
                        }
                        None => {
                            self.accounts.remove(addr);
                        }
                    }
                }
                for (addr, slots) in &delta.storage {
                    let mine = self.storage.entry(*addr).or_default();
                    for (slot, value) in slots {
                        match value {
                            Some(v) if !v.is_zero() => {
                                mine.insert(*slot, SlotEntry::Inline(*v));
                            }
                            _ => {
                                mine.remove(slot);
                            }
                        }
                    }
                    if mine.is_empty() {
                        self.storage.remove(addr);
                    }
                }
            }
            Some(_) => self.append_batch(delta)?,
        }
        self.root = root;
        self.height = height;
        Ok(())
    }

    /// File-mode half of [`FlatBase::apply`]: encode, append, fsync, index.
    fn append_batch(&mut self, delta: &StateDelta) -> Result<(), SnapError> {
        let start = self.file.as_ref().unwrap().len;
        let mut buf: Vec<u8> = Vec::new();
        // (key, disk entry) pairs to index once the batch is on disk.
        let mut acct_idx: Vec<(Address, Option<AcctEntry>)> = Vec::new();
        let mut slot_idx: Vec<(Address, H256, Option<SlotEntry>)> = Vec::new();
        for (addr, acct) in &delta.accounts {
            let offset = start + buf.len() as u64;
            match acct {
                Some(a) => {
                    buf.push(ACC_PUT);
                    buf.extend_from_slice(addr.as_bytes());
                    buf.extend_from_slice(&a.nonce.to_be_bytes());
                    buf.extend_from_slice(&a.balance.to_be_bytes());
                    buf.extend_from_slice(&(a.code.len() as u32).to_be_bytes());
                    buf.extend_from_slice(&a.code);
                    acct_idx.push((
                        *addr,
                        Some(AcctEntry::Disk {
                            offset,
                            code_len: a.code.len() as u32,
                        }),
                    ));
                }
                None => {
                    buf.push(ACC_DEL);
                    buf.extend_from_slice(addr.as_bytes());
                    acct_idx.push((*addr, None));
                }
            }
        }
        for (addr, slots) in &delta.storage {
            for (slot, value) in slots {
                let offset = start + buf.len() as u64;
                match value {
                    Some(v) if !v.is_zero() => {
                        buf.push(SLOT_PUT);
                        buf.extend_from_slice(addr.as_bytes());
                        buf.extend_from_slice(slot.as_bytes());
                        buf.extend_from_slice(&v.to_be_bytes());
                        slot_idx.push((*addr, *slot, Some(SlotEntry::Disk { offset })));
                    }
                    _ => {
                        buf.push(SLOT_DEL);
                        buf.extend_from_slice(addr.as_bytes());
                        buf.extend_from_slice(slot.as_bytes());
                        slot_idx.push((*addr, *slot, None));
                    }
                }
            }
        }
        {
            let backing = self.file.as_mut().unwrap();
            backing.file.write_all(&buf)?;
            backing.file.sync_data()?;
            backing.len += buf.len() as u64;
        }
        // Only after the bytes are down: swing the index and live counts.
        for (addr, entry) in acct_idx {
            let dead = self.evict_account(&addr);
            let backing = self.file.as_mut().unwrap();
            backing.live -= dead;
            match entry {
                Some(e) => {
                    if let AcctEntry::Disk { code_len, .. } = e {
                        backing.live += ACC_PUT_HEAD + code_len as u64;
                    }
                    self.accounts.insert(addr, e);
                }
                None => {
                    self.accounts.remove(&addr);
                }
            }
        }
        for (addr, slot, entry) in slot_idx {
            let dead = self.evict_slot(&addr, &slot);
            let backing = self.file.as_mut().unwrap();
            backing.live -= dead;
            match entry {
                Some(e) => {
                    backing.live += SLOT_PUT_SIZE;
                    self.storage.entry(addr).or_default().insert(slot, e);
                }
                None => {
                    if let Some(slots) = self.storage.get_mut(&addr) {
                        slots.remove(&slot);
                        if slots.is_empty() {
                            self.storage.remove(&addr);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// True when dead bytes dominate: the file has grown past 64 KiB and
    /// holds more than 4× its live records.
    pub fn wants_compaction(&self) -> bool {
        match &self.file {
            Some(f) => f.len > 65_536 && f.len > 4 * f.live.max(1),
            None => false,
        }
    }

    /// Rewrites every live record into `flat.<gen+1>.log`, fsyncs it, and
    /// swings the index to the new file. The caller must persist the new
    /// generation + length via the meta, after which
    /// [`FlatBase::remove_stale_files`] may delete the old generation.
    pub fn compact(&mut self) -> Result<(), SnapError> {
        let (dir, old_gen) = match &self.file {
            Some(f) => (f.dir.clone(), f.file_gen),
            None => return Ok(()),
        };
        let new_gen = old_gen + 1;
        let new_path = flat_path(&dir, new_gen);
        let mut new_file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .truncate(false)
            .open(&new_path)?;
        new_file.set_len(0)?;

        let mut buf: Vec<u8> = Vec::new();
        let mut new_accounts: HashMap<Address, AcctEntry> = HashMap::new();
        let mut new_storage: HashMap<Address, HashMap<H256, SlotEntry>> = HashMap::new();
        for addr in self.accounts.keys().copied().collect::<Vec<_>>() {
            let offset = buf.len() as u64;
            let a = self
                .account(&addr)?
                .expect("indexed account must resolve during compaction");
            buf.push(ACC_PUT);
            buf.extend_from_slice(addr.as_bytes());
            buf.extend_from_slice(&a.nonce.to_be_bytes());
            buf.extend_from_slice(&a.balance.to_be_bytes());
            buf.extend_from_slice(&(a.code.len() as u32).to_be_bytes());
            buf.extend_from_slice(&a.code);
            new_accounts.insert(
                addr,
                AcctEntry::Disk {
                    offset,
                    code_len: a.code.len() as u32,
                },
            );
        }
        for addr in self.storage.keys().copied().collect::<Vec<_>>() {
            let slots = self.storage[&addr].keys().copied().collect::<Vec<_>>();
            for slot in slots {
                let offset = buf.len() as u64;
                let value = self
                    .slot(&addr, &slot)?
                    .expect("indexed slot must resolve during compaction");
                buf.push(SLOT_PUT);
                buf.extend_from_slice(addr.as_bytes());
                buf.extend_from_slice(slot.as_bytes());
                buf.extend_from_slice(&value.to_be_bytes());
                new_storage
                    .entry(addr)
                    .or_default()
                    .insert(slot, SlotEntry::Disk { offset });
            }
        }
        new_file.write_all(&buf)?;
        new_file.sync_data()?;

        let backing = self.file.as_mut().unwrap();
        backing.file = new_file;
        backing.file_gen = new_gen;
        backing.len = buf.len() as u64;
        backing.live = buf.len() as u64;
        self.accounts = new_accounts;
        self.storage = new_storage;
        Ok(())
    }

    /// Deletes flat-file generations other than the current one — call only
    /// after the current generation is durably recorded in the meta.
    pub fn remove_stale_files(&self) -> Result<(), SnapError> {
        let backing = match &self.file {
            Some(f) => f,
            None => return Ok(()),
        };
        for entry in std::fs::read_dir(&backing.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(gen) = name
                .strip_prefix("flat.")
                .and_then(|r| r.strip_suffix(".log"))
                .and_then(|g| g.parse::<u64>().ok())
            {
                if gen != backing.file_gen {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(())
    }

    /// The account body at `addr`, if the base holds one.
    pub fn account(&self, addr: &Address) -> Result<Option<BaseAccount>, SnapError> {
        match self.accounts.get(addr) {
            None => Ok(None),
            Some(AcctEntry::Inline(a)) => Ok(Some(a.clone())),
            Some(AcctEntry::Disk { offset, code_len }) => {
                let backing = self.file.as_ref().expect("disk entry without file");
                let mut head = [0u8; 44];
                read_exact_at(&backing.file, &mut head, offset + 21)?;
                let nonce = u64::from_be_bytes(head[0..8].try_into().unwrap());
                let balance = U256::from_be_bytes(head[8..40].try_into().unwrap());
                let mut code = vec![0u8; *code_len as usize];
                read_exact_at(&backing.file, &mut code, offset + ACC_PUT_HEAD)?;
                Ok(Some(BaseAccount {
                    nonce,
                    balance,
                    code: Arc::new(code),
                }))
            }
        }
    }

    /// The storage value at `(addr, slot)`, if the base holds one.
    pub fn slot(&self, addr: &Address, slot: &H256) -> Result<Option<U256>, SnapError> {
        match self.storage.get(addr).and_then(|s| s.get(slot)) {
            None => Ok(None),
            Some(SlotEntry::Inline(v)) => Ok(Some(*v)),
            Some(SlotEntry::Disk { offset }) => {
                let backing = self.file.as_ref().expect("disk entry without file");
                let mut value = [0u8; 32];
                read_exact_at(&backing.file, &mut value, offset + 53)?;
                Ok(Some(U256::from_be_bytes(value)))
            }
        }
    }

    /// Every live storage entry of `addr`.
    pub fn storage_entries(&self, addr: &Address) -> Result<Vec<(H256, U256)>, SnapError> {
        let slots = match self.storage.get(addr) {
            Some(s) => s,
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::with_capacity(slots.len());
        for slot in slots.keys() {
            let value = self.slot(addr, slot)?.expect("indexed slot must resolve");
            out.push((*slot, value));
        }
        Ok(out)
    }

    /// Every address with a body or storage in the base.
    pub fn addresses(&self) -> Vec<Address> {
        let mut addrs: Vec<Address> = self.accounts.keys().copied().collect();
        for addr in self.storage.keys() {
            if !self.accounts.contains_key(addr) {
                addrs.push(*addr);
            }
        }
        addrs
    }
}

/// `pread`-style positional read (does not move the file cursor).
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> Result<(), SnapError> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)?;
        Ok(())
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file.try_clone()?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
        Ok(())
    }
}

fn read_addr(bytes: &[u8], off: u64) -> Address {
    let mut a = [0u8; 20];
    a.copy_from_slice(&bytes[off as usize..off as usize + 20]);
    Address(a)
}

fn read_h256(bytes: &[u8], off: u64) -> H256 {
    let mut h = [0u8; 32];
    h.copy_from_slice(&bytes[off as usize..off as usize + 32]);
    H256(h)
}

fn slice4(bytes: &[u8], off: u64) -> [u8; 4] {
    bytes[off as usize..off as usize + 4].try_into().unwrap()
}
