//! The diff-layer journal: retained (not yet flattened) layers, persisted
//! so a restart reopens the snapshot tree exactly where it left off.
//!
//! `layers.<layer_gen>.log` holds one framed record per layer:
//!
//! ```text
//! [payload_len u32 BE][payload][keccak256(payload) 32B]
//! payload = root(32) | parent(32) | height(8)
//!         | n_accounts(4) | { addr(20) | 0x00                                    — delete
//!                           | addr(20) | 0x01 nonce(8) balance(32) code_len(4) code }*
//!         | n_storage(4)  | { addr(20) | n_slots(4)
//!                             { slot(32) | 0x00 — delete | 0x01 value(32) }* }*
//! ```
//!
//! The journal is appended on every accepted layer; flattening rewrites the
//! retained set (small — bounded by the retention window) into a fresh
//! generation so the older meta's view of the previous file stays intact
//! until the new meta is durable. Only the byte length recorded in the meta
//! is trusted: a crash mid-append leaves a torn tail past that length,
//! truncated on open. The per-record checksum guards the decode itself.

use bp_crypto::keccak256;
use bp_state::{BaseAccount, StateDelta};
use bp_types::{Address, H256, U256};
use std::sync::Arc;

use crate::SnapError;

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerRecord {
    /// Post-state root of the layer's block.
    pub root: H256,
    /// Parent root the layer stacks on.
    pub parent: H256,
    /// Block height of `root`.
    pub height: u64,
    /// The block's net effect on its parent.
    pub delta: StateDelta,
}

/// Encodes one layer as a framed journal record.
pub fn encode_record(record: &LayerRecord) -> Vec<u8> {
    let mut p: Vec<u8> = Vec::new();
    p.extend_from_slice(record.root.as_bytes());
    p.extend_from_slice(record.parent.as_bytes());
    p.extend_from_slice(&record.height.to_be_bytes());
    p.extend_from_slice(&(record.delta.accounts.len() as u32).to_be_bytes());
    for (addr, acct) in &record.delta.accounts {
        p.extend_from_slice(addr.as_bytes());
        match acct {
            None => p.push(0x00),
            Some(a) => {
                p.push(0x01);
                p.extend_from_slice(&a.nonce.to_be_bytes());
                p.extend_from_slice(&a.balance.to_be_bytes());
                p.extend_from_slice(&(a.code.len() as u32).to_be_bytes());
                p.extend_from_slice(&a.code);
            }
        }
    }
    p.extend_from_slice(&(record.delta.storage.len() as u32).to_be_bytes());
    for (addr, slots) in &record.delta.storage {
        p.extend_from_slice(addr.as_bytes());
        p.extend_from_slice(&(slots.len() as u32).to_be_bytes());
        for (slot, value) in slots {
            p.extend_from_slice(slot.as_bytes());
            match value {
                None => p.push(0x00),
                Some(v) => {
                    p.push(0x01);
                    p.extend_from_slice(&v.to_be_bytes());
                }
            }
        }
    }
    let mut out = Vec::with_capacity(4 + p.len() + 32);
    out.extend_from_slice(&(p.len() as u32).to_be_bytes());
    let checksum = keccak256(&p);
    out.extend_from_slice(&p);
    out.extend_from_slice(&checksum.0);
    out
}

/// A cursor-style reader over one payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapError::Corrupt(
                "layer record payload truncated".to_string(),
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn h256(&mut self) -> Result<H256, SnapError> {
        let mut h = [0u8; 32];
        h.copy_from_slice(self.take(32)?);
        Ok(H256(h))
    }
    fn u256(&mut self) -> Result<U256, SnapError> {
        let mut b = [0u8; 32];
        b.copy_from_slice(self.take(32)?);
        Ok(U256::from_be_bytes(b))
    }
    fn addr(&mut self) -> Result<Address, SnapError> {
        let mut a = [0u8; 20];
        a.copy_from_slice(self.take(20)?);
        Ok(Address(a))
    }
}

/// Decodes one checksum-verified payload.
fn decode_payload(payload: &[u8]) -> Result<LayerRecord, SnapError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let root = c.h256()?;
    let parent = c.h256()?;
    let height = c.u64()?;
    let mut delta = StateDelta::default();
    let n_accounts = c.u32()?;
    for _ in 0..n_accounts {
        let addr = c.addr()?;
        let entry = match c.u8()? {
            0x00 => None,
            0x01 => {
                let nonce = c.u64()?;
                let balance = c.u256()?;
                let code_len = c.u32()? as usize;
                let code = c.take(code_len)?.to_vec();
                Some(BaseAccount {
                    nonce,
                    balance,
                    code: Arc::new(code),
                })
            }
            other => {
                return Err(SnapError::Corrupt(format!(
                    "bad account flag {other:#x} in layer record"
                )))
            }
        };
        delta.accounts.insert(addr, entry);
    }
    let n_storage = c.u32()?;
    for _ in 0..n_storage {
        let addr = c.addr()?;
        let n_slots = c.u32()?;
        let slots = delta.storage.entry(addr).or_default();
        for _ in 0..n_slots {
            let slot = c.h256()?;
            let entry = match c.u8()? {
                0x00 => None,
                0x01 => Some(c.u256()?),
                other => {
                    return Err(SnapError::Corrupt(format!(
                        "bad slot flag {other:#x} in layer record"
                    )))
                }
            };
            slots.insert(slot, entry);
        }
    }
    if c.pos != payload.len() {
        return Err(SnapError::Corrupt(
            "trailing bytes in layer record".to_string(),
        ));
    }
    Ok(LayerRecord {
        root,
        parent,
        height,
        delta,
    })
}

/// Decodes a journal of exactly `bytes` durable bytes into its records.
pub fn decode_journal(bytes: &[u8]) -> Result<Vec<LayerRecord>, SnapError> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        if off + 4 > bytes.len() {
            return Err(SnapError::Corrupt(
                "layer journal frame header overruns durable length".to_string(),
            ));
        }
        let payload_len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + 4 + payload_len + 32;
        if end > bytes.len() {
            return Err(SnapError::Corrupt(
                "layer journal record overruns durable length".to_string(),
            ));
        }
        let payload = &bytes[off + 4..off + 4 + payload_len];
        let checksum = &bytes[off + 4 + payload_len..end];
        if keccak256(payload).0 != checksum {
            return Err(SnapError::Corrupt(
                "layer journal record checksum mismatch".to_string(),
            ));
        }
        records.push(decode_payload(payload)?);
        off = end;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sample(i: u64) -> LayerRecord {
        let mut delta = StateDelta::default();
        delta.accounts.insert(
            Address::from_index(i),
            Some(BaseAccount {
                nonce: i,
                balance: U256::from(1000 + i),
                code: Arc::new(vec![0xFE; i as usize % 5]),
            }),
        );
        delta.accounts.insert(Address::from_index(i + 100), None);
        let mut slots = HashMap::new();
        slots.insert(H256::from_low_u64(i), Some(U256::from(i + 1)));
        slots.insert(H256::from_low_u64(i + 1), None);
        delta.storage.insert(Address::from_index(i), slots);
        LayerRecord {
            root: H256::from_low_u64(i + 1),
            parent: H256::from_low_u64(i),
            height: i,
            delta,
        }
    }

    #[test]
    fn roundtrip_multiple_records() {
        let records: Vec<LayerRecord> = (1..5).map(sample).collect();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        assert_eq!(decode_journal(&bytes).unwrap(), records);
        assert_eq!(decode_journal(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut bytes = encode_record(&sample(1));
        bytes[10] ^= 0xFF;
        assert!(decode_journal(&bytes).is_err());
    }

    #[test]
    fn overrunning_record_is_rejected() {
        let bytes = encode_record(&sample(1));
        assert!(decode_journal(&bytes[..bytes.len() - 1]).is_err());
    }
}
