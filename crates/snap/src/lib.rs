//! # bp-snap — layered flat state for BlockPilot
//!
//! A snapshot **diff-layer tree** over a **disk-backed flat base**, in the
//! spirit of geth's snapshot acceleration structure:
//!
//! - [`FlatBase`] (`base.rs`) — an append-only log of key→value account and
//!   storage records plus an in-memory offset index. Values are read
//!   positionally on demand, so resident memory is O(keys), not O(bytes of
//!   state), and the log self-compacts when dead bytes dominate.
//! - [`DiffLayer`]s (`tree.rs`) — one cheap in-memory [`StateDelta`] per
//!   pending/committed block, stacked over the base. Same-height siblings
//!   (proposer vs validator forks) each get their own layer sharing the
//!   same parent, mirroring `WorldState::snapshot()`'s CoW forks.
//! - [`SnapTree`] — owns both; resolves a root hash to a read view
//!   ([`SnapReader`], a [`bp_state::StateReader`]) that probes O(depth)
//!   layers before falling through to the base, and **flattens** layers
//!   beyond a retention window into the base as blocks finalize.
//! - `meta.rs` / `journal.rs` — dual-slot checksummed metadata and a framed
//!   layer journal make the whole structure crash-safe: a crash at any byte
//!   rolls back to the last durable flatten, never a corrupt read.
//!
//! [`StateDelta`]: bp_state::StateDelta

use std::fmt;

pub mod base;
pub mod journal;
pub mod meta;
pub mod tree;

pub use base::FlatBase;
pub use journal::{decode_journal, encode_record, LayerRecord};
pub use meta::SnapMeta;
pub use tree::{DiffLayer, SnapReader, SnapTree};

/// Errors from the snapshot subsystem.
#[derive(Debug)]
pub enum SnapError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// Persisted bytes failed validation (checksum, framing, flags).
    Corrupt(String),
    /// A root was referenced that neither the base nor any layer covers.
    UnknownRoot(bp_types::H256),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapError::Corrupt(msg) => write!(f, "snapshot corruption: {msg}"),
            SnapError::UnknownRoot(root) => {
                write!(f, "unknown snapshot root {root:?}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// Creates a unique scratch directory for tests and benches.
pub fn test_dir(label: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("bp-snap-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
