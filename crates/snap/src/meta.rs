//! Crash-safe snapshot metadata: the flat base's single source of durable
//! truth.
//!
//! A [`SnapMeta`] records which flat-base file generation is current, the
//! durable byte lengths of the flat log and the layer journal, and the root
//! and height the base answers reads for. Two slots (`snapmeta.0`,
//! `snapmeta.1`) are written alternately — always the one *not* holding the
//! current meta — each protected by a trailing keccak checksum and stamped
//! with a monotonically increasing generation, exactly mirroring the store
//! manifest's recovery protocol.
//!
//! On open, the newest slot that (a) passes its checksum and (b) records
//! lengths no longer than the actual files wins; (b) is what lets a base
//! whose data file lost its tail (torn final batch) fall back a generation
//! — to the last durable flatten — instead of trusting a meta that points
//! past the end of the file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bp_crypto::{keccak256, rlp, RlpStream};
use bp_types::H256;

use crate::SnapError;

/// One durable snapshot commit point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapMeta {
    /// Monotonic commit counter; the larger generation wins on open.
    pub generation: u64,
    /// Which `flat.<file_gen>.log` holds the base records (bumped by
    /// compaction, which rewrites live records into a fresh file).
    pub file_gen: u64,
    /// Durable byte length of `flat.<file_gen>.log`.
    pub flat_len: u64,
    /// Which `layers.<layer_gen>.log` holds the diff-layer journal (bumped
    /// when flattening rewrites the retained set).
    pub layer_gen: u64,
    /// Durable byte length of `layers.<layer_gen>.log`.
    pub layers_len: u64,
    /// The state root the flat base answers reads for.
    pub root: H256,
    /// The block height of `root`.
    pub height: u64,
}

const SLOTS: [&str; 2] = ["snapmeta.0", "snapmeta.1"];

/// Path of meta slot `slot` under `dir`.
pub fn slot_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(SLOTS[slot])
}

/// Path of flat-base file generation `file_gen` under `dir`.
pub fn flat_path(dir: &Path, file_gen: u64) -> PathBuf {
    dir.join(format!("flat.{file_gen}.log"))
}

/// Path of layer-journal generation `layer_gen` under `dir`.
pub fn layers_path(dir: &Path, layer_gen: u64) -> PathBuf {
    dir.join(format!("layers.{layer_gen}.log"))
}

/// Serializes a meta: RLP payload followed by its keccak checksum.
fn encode(data: &SnapMeta) -> Vec<u8> {
    let mut s = RlpStream::new();
    s.begin_list(7);
    s.append_u64(data.generation);
    s.append_u64(data.file_gen);
    s.append_u64(data.flat_len);
    s.append_u64(data.layer_gen);
    s.append_u64(data.layers_len);
    s.append_h256(&data.root);
    s.append_u64(data.height);
    let mut out = s.out();
    let checksum = keccak256(&out);
    out.extend_from_slice(&checksum.0);
    out
}

/// Deserializes and checksum-verifies one slot's bytes.
fn decode(bytes: &[u8]) -> Option<SnapMeta> {
    if bytes.len() < 32 {
        return None;
    }
    let (payload, checksum) = bytes.split_at(bytes.len() - 32);
    if keccak256(payload).0 != checksum {
        return None;
    }
    let item = rlp::decode(payload).ok()?;
    let list = item.as_list().ok()?;
    if list.len() != 7 {
        return None;
    }
    Some(SnapMeta {
        generation: list[0].as_u64().ok()?,
        file_gen: list[1].as_u64().ok()?,
        flat_len: list[2].as_u64().ok()?,
        layer_gen: list[3].as_u64().ok()?,
        layers_len: list[4].as_u64().ok()?,
        root: list[5].as_h256().ok()?,
        height: list[6].as_u64().ok()?,
    })
}

/// Reads one slot, returning `None` for a missing, torn, or corrupt file.
pub fn read_slot(dir: &Path, slot: usize) -> Option<SnapMeta> {
    let mut bytes = Vec::new();
    File::open(slot_path(dir, slot))
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    decode(&bytes)
}

/// Durably writes `data` into `slot`: write, fsync the file, then fsync the
/// directory so the entry itself survives a crash.
pub fn write_slot(dir: &Path, slot: usize, data: &SnapMeta) -> Result<(), SnapError> {
    let path = slot_path(dir, slot);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    file.write_all(&encode(data))?;
    file.sync_all()?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Loads both slots and picks the authoritative meta: highest generation
/// whose recorded lengths fit the actual files (flat file length looked up
/// per slot, since slots may reference different file generations). Returns
/// the winner (if any), plus the slot index and generation the *next*
/// commit must use.
pub fn load(dir: &Path) -> (Option<SnapMeta>, usize, u64) {
    let slots = [read_slot(dir, 0), read_slot(dir, 1)];
    let max_gen = slots
        .iter()
        .flatten()
        .map(|m| m.generation)
        .max()
        .unwrap_or(0);
    let mut candidates: Vec<(usize, SnapMeta)> = slots
        .into_iter()
        .enumerate()
        .filter_map(|(i, m)| m.map(|m| (i, m)))
        .collect();
    candidates.sort_by_key(|(_, m)| std::cmp::Reverse(m.generation));
    let active = candidates.into_iter().find(|(_, m)| {
        let flat_actual = std::fs::metadata(flat_path(dir, m.file_gen))
            .map(|f| f.len())
            .unwrap_or(0);
        let layers_actual = std::fs::metadata(layers_path(dir, m.layer_gen))
            .map(|f| f.len())
            .unwrap_or(0);
        m.flat_len <= flat_actual && m.layers_len <= layers_actual
    });
    match active {
        Some((slot, data)) => (Some(data), 1 - slot, max_gen + 1),
        None => (None, 0, max_gen + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn meta(generation: u64, flat_len: u64) -> SnapMeta {
        SnapMeta {
            generation,
            file_gen: 0,
            flat_len,
            layer_gen: 0,
            layers_len: 0,
            root: H256::from_low_u64(generation),
            height: generation,
        }
    }

    #[test]
    fn roundtrip_through_slot_files() {
        let dir = test_dir("snapmeta-roundtrip");
        let data = meta(3, 0);
        write_slot(&dir, 0, &data).unwrap();
        assert_eq!(read_slot(&dir, 0), Some(data));
        assert_eq!(read_slot(&dir, 1), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_slot_is_ignored() {
        let dir = test_dir("snapmeta-corrupt");
        write_slot(&dir, 0, &meta(1, 0)).unwrap();
        let path = slot_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_slot(&dir, 0), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_prefers_newest_fitting_generation() {
        let dir = test_dir("snapmeta-load");
        std::fs::write(flat_path(&dir, 0), vec![0u8; 80]).unwrap();
        write_slot(&dir, 0, &meta(1, 50)).unwrap();
        write_slot(&dir, 1, &meta(2, 80)).unwrap();
        let (active, next_slot, next_gen) = load(&dir);
        assert_eq!(active.as_ref().unwrap().generation, 2);
        assert_eq!(next_slot, 0);
        assert_eq!(next_gen, 3);
        // Flat file truncated below generation 2's length: fall back to 1.
        std::fs::write(flat_path(&dir, 0), vec![0u8; 60]).unwrap();
        let (active, next_slot, next_gen) = load(&dir);
        assert_eq!(active.as_ref().unwrap().generation, 1);
        assert_eq!(next_slot, 1);
        assert_eq!(next_gen, 3);
        // Truncated below both: nothing is trustworthy.
        std::fs::write(flat_path(&dir, 0), vec![0u8; 10]).unwrap();
        let (active, _, _) = load(&dir);
        assert_eq!(active, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
