//! The snapshot diff-layer tree: cheap per-block [`DiffLayer`]s stacked
//! over the [`FlatBase`], with crash-safe flattening past a retention
//! window.
//!
//! ```text
//!        L7a   L7b        ← same-height siblings (proposer/validator forks)
//!          \   /
//!           L6
//!           |
//!           L5             ← retained layers (in memory + layer journal)
//!           |
//!        FlatBase          ← disk-backed flat records, root of height 4
//! ```
//!
//! Every accepted block adds one layer keyed by its post-state root;
//! [`SnapTree::retain`] folds layers beyond the window into the base
//! (oldest first, so later writes win) and garbage-collects forks left
//! dangling below the new base. [`SnapTree::reader`] resolves a root into a
//! [`SnapReader`] whose probes walk that root's layer chain newest-first
//! before falling through to the base — O(depth) per miss.
//!
//! Crash safety: a layer append is journal-write → fsync → meta swap; a
//! flatten is base-append → fsync → journal rewrite (new generation) →
//! fsync → meta swap → stale-file removal. At any crash point the newest
//! meta whose recorded lengths fit the actual files reconstructs a
//! consistent (base, layers) pair — at worst the tree reverts to the
//! previous durable commit, never to a corrupt read.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use bp_state::{BaseAccount, StateDelta, StateReader};
use bp_types::{Address, H256, U256};

use crate::base::FlatBase;
use crate::journal::{decode_journal, encode_record, LayerRecord};
use crate::meta::{self, SnapMeta};
use crate::SnapError;

/// One block's net effect on its parent state, addressable by root.
#[derive(Debug)]
pub struct DiffLayer {
    /// Post-state root of the block this layer represents.
    pub root: H256,
    /// Root this layer stacks on (another layer or the base).
    pub parent: H256,
    /// Block height of `root`.
    pub height: u64,
    /// The writes: `None` account/slot entries are deletions; zero slot
    /// values are treated as deletions to match flat-state semantics.
    pub delta: StateDelta,
}

/// Durable-side state: meta slot rotation and the open journal handle.
struct Persist {
    dir: PathBuf,
    slot: usize,
    generation: u64,
    layer_gen: u64,
    layers_len: u64,
    journal: File,
}

struct TreeInner {
    base: FlatBase,
    layers: HashMap<H256, Arc<DiffLayer>>,
    persist: Option<Persist>,
    /// With deferred sync on, [`SnapTree::add_layer`] appends to the journal
    /// without fsyncing it or swapping the meta; [`SnapTree::sync`] makes the
    /// accumulated tail durable in one batch. A crash between syncs reverts
    /// to the last synced journal length (the meta still records it), exactly
    /// like an unsynced store-log tail.
    deferred_sync: bool,
}

/// The snapshot tree. Cheap to clone (shares the inner tree); all methods
/// take `&self` and synchronize internally.
#[derive(Clone)]
pub struct SnapTree {
    inner: Arc<RwLock<TreeInner>>,
}

impl std::fmt::Debug for SnapTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().unwrap();
        f.debug_struct("SnapTree")
            .field("base_root", &inner.base.root())
            .field("base_height", &inner.base.height())
            .field("layers", &inner.layers.len())
            .finish()
    }
}

impl SnapTree {
    /// An empty in-memory tree (no durability) at the empty root.
    pub fn memory() -> Self {
        SnapTree {
            inner: Arc::new(RwLock::new(TreeInner {
                base: FlatBase::memory(),
                layers: HashMap::new(),
                persist: None,
                deferred_sync: false,
            })),
        }
    }

    /// Opens (or creates) a persistent tree under `dir`, recovering the
    /// newest durable (base, layers) pair: the authoritative meta picks the
    /// flat file and journal generations, torn tails past the recorded
    /// lengths are truncated, and journal records re-attach in multiple
    /// passes (orphans whose parents folded away are dropped).
    pub fn open(dir: &Path) -> Result<Self, SnapError> {
        std::fs::create_dir_all(dir)?;
        let (active, slot, generation) = meta::load(dir);
        let m = active.unwrap_or(SnapMeta {
            generation: 0,
            file_gen: 0,
            flat_len: 0,
            layer_gen: 0,
            layers_len: 0,
            root: bp_state::empty_root(),
            height: 0,
        });
        let base = FlatBase::open_file(dir, m.file_gen, m.flat_len, m.root, m.height)?;

        let jpath = meta::layers_path(dir, m.layer_gen);
        let journal = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&jpath)?;
        let actual = journal.metadata()?.len();
        if actual < m.layers_len {
            return Err(SnapError::Corrupt(format!(
                "layer journal shorter than durable length: {actual} < {}",
                m.layers_len
            )));
        }
        if actual > m.layers_len {
            journal.set_len(m.layers_len)?;
            journal.sync_data()?;
        }
        let bytes = std::fs::read(&jpath)?;
        let records = decode_journal(&bytes)?;

        let mut layers: HashMap<H256, Arc<DiffLayer>> = HashMap::new();
        let mut pending = records;
        loop {
            let before = pending.len();
            pending.retain(|r| {
                if r.root == base.root() || layers.contains_key(&r.root) {
                    return false; // duplicate — drop
                }
                if r.parent == base.root() || layers.contains_key(&r.parent) {
                    layers.insert(
                        r.root,
                        Arc::new(DiffLayer {
                            root: r.root,
                            parent: r.parent,
                            height: r.height,
                            delta: r.delta.clone(),
                        }),
                    );
                    return false;
                }
                true // parent not attached yet — retry next pass
            });
            if pending.len() == before {
                break; // remaining records are orphans below the fold point
            }
        }

        let tree = SnapTree {
            inner: Arc::new(RwLock::new(TreeInner {
                base,
                layers,
                persist: Some(Persist {
                    dir: dir.to_path_buf(),
                    slot,
                    generation,
                    layer_gen: m.layer_gen,
                    layers_len: m.layers_len,
                    journal,
                }),
                deferred_sync: false,
            })),
        };
        {
            let inner = tree.inner.read().unwrap();
            cleanup_stale(&inner)?;
        }
        Ok(tree)
    }

    /// Folds `delta` directly into the base (no layer), advancing it to
    /// `root` at `height`. Used to bootstrap the genesis state.
    pub fn seed(&self, delta: &StateDelta, root: H256, height: u64) -> Result<(), SnapError> {
        let mut inner = self.inner.write().unwrap();
        inner.base.apply(delta, root, height)?;
        if inner.persist.is_some() {
            write_meta(&mut inner)?;
        }
        Ok(())
    }

    /// Discards every layer and rebuilds the base from scratch out of
    /// `delta` (a full-state delta over empty). Recovery uses this before
    /// replaying the chain: replayed folds must move forward in height, so
    /// the base restarts from genesis on a fresh file generation.
    pub fn reset(&self, delta: &StateDelta, root: H256, height: u64) -> Result<(), SnapError> {
        let mut inner = self.inner.write().unwrap();
        inner.layers.clear();
        match &inner.persist {
            None => {
                let mut base = FlatBase::memory();
                base.apply(delta, root, height)?;
                inner.base = base;
                Ok(())
            }
            Some(p) => {
                let dir = p.dir.clone();
                let new_gen = inner.base.file_gen() + 1;
                let mut base = FlatBase::open_file(&dir, new_gen, 0, bp_state::empty_root(), 0)?;
                base.apply(delta, root, height)?;
                inner.base = base;
                let p = inner.persist.as_mut().unwrap();
                p.layer_gen += 1;
                let jpath = meta::layers_path(&dir, p.layer_gen);
                let journal = OpenOptions::new()
                    .read(true)
                    .append(true)
                    .create(true)
                    .open(&jpath)?;
                journal.set_len(0)?;
                journal.sync_data()?;
                p.journal = journal;
                p.layers_len = 0;
                write_meta(&mut inner)?;
                cleanup_stale(&inner)?;
                Ok(())
            }
        }
    }

    /// Stacks one layer for a block with post-state `root` on `parent`.
    /// Idempotent: re-adding a known root (or the base root itself, which
    /// covers empty blocks whose root equals their parent's) returns
    /// `Ok(false)`. The parent must be the base root or a known layer.
    pub fn add_layer(
        &self,
        root: H256,
        parent: H256,
        height: u64,
        delta: StateDelta,
    ) -> Result<bool, SnapError> {
        let mut inner = self.inner.write().unwrap();
        if root == inner.base.root() || inner.layers.contains_key(&root) {
            return Ok(false);
        }
        if parent != inner.base.root() && !inner.layers.contains_key(&parent) {
            return Err(SnapError::UnknownRoot(parent));
        }
        let record = LayerRecord {
            root,
            parent,
            height,
            delta,
        };
        let deferred = inner.deferred_sync;
        if inner.persist.is_some() {
            let encoded = encode_record(&record);
            let p = inner.persist.as_mut().unwrap();
            p.journal.write_all(&encoded)?;
            if !deferred {
                p.journal.sync_data()?;
            }
            p.layers_len += encoded.len() as u64;
        }
        inner.layers.insert(
            root,
            Arc::new(DiffLayer {
                root,
                parent,
                height,
                delta: record.delta,
            }),
        );
        if inner.persist.is_some() && !deferred {
            write_meta(&mut inner)?;
        }
        Ok(true)
    }

    /// Switches deferred-sync mode: layer appends go to the journal without
    /// an fsync or meta swap, and [`SnapTree::sync`] batches them durable.
    /// The group-commit store enables this so per-block layer appends stay
    /// buffered until the batch boundary.
    pub fn set_deferred_sync(&self, on: bool) {
        self.inner.write().unwrap().deferred_sync = on;
    }

    /// Makes every buffered layer append durable: fsync the journal, then
    /// swap the meta to record the new length. A no-op for in-memory trees.
    /// Callers coalescing commits must invoke this *before* publishing any
    /// external pointer (e.g. the store manifest) to state the layers are
    /// part of.
    pub fn sync(&self) -> Result<(), SnapError> {
        let mut inner = self.inner.write().unwrap();
        if inner.persist.is_some() {
            inner.persist.as_mut().unwrap().journal.sync_data()?;
            write_meta(&mut inner)?;
        }
        Ok(())
    }

    /// Bytes appended to the layer journal (including a not-yet-synced
    /// deferred tail). 0 for in-memory trees.
    pub fn journal_len(&self) -> u64 {
        self.inner
            .read()
            .unwrap()
            .persist
            .as_ref()
            .map(|p| p.layers_len)
            .unwrap_or(0)
    }

    /// Keeps the newest `keep` layers on the chain ending at `head` and
    /// flattens everything older into the base (oldest first, so later
    /// writes win). Forks left hanging below the new base are
    /// garbage-collected, the journal is rewritten into a fresh generation,
    /// and the base self-compacts when dead bytes dominate. Returns how
    /// many layers were folded.
    pub fn retain(&self, head: H256, keep: usize) -> Result<usize, SnapError> {
        let mut inner = self.inner.write().unwrap();
        let chain = chain_of(&inner, head)?;
        if chain.len() <= keep {
            return Ok(0);
        }
        let fold: Vec<Arc<DiffLayer>> = chain[keep..].to_vec();
        let mut merged = StateDelta::default();
        for layer in fold.iter().rev() {
            merged.fold(&layer.delta);
        }
        let newest = &fold[0];
        let (new_root, new_height) = (newest.root, newest.height);
        inner.base.apply(&merged, new_root, new_height)?;
        for layer in &fold {
            inner.layers.remove(&layer.root);
        }
        gc_unreachable(&mut inner);
        if inner.base.wants_compaction() {
            inner.base.compact()?;
        }
        if inner.persist.is_some() {
            rewrite_journal(&mut inner)?;
            write_meta(&mut inner)?;
            cleanup_stale(&inner)?;
        }
        Ok(fold.len())
    }

    /// A read view of the state at `root`: the layer chain from `root` down
    /// to the base is pinned at creation (flattening cannot invalidate
    /// probes through it), base misses go to the live base under a read
    /// lock. A reader is only guaranteed consistent while its root stays
    /// within the retention window: once the base folds *past* the root (or
    /// the root's fork is pruned), keys absent from the pinned chain read
    /// newer base values.
    pub fn reader(&self, root: H256) -> Result<SnapReader, SnapError> {
        let inner = self.inner.read().unwrap();
        let chain = chain_of(&inner, root)?;
        Ok(SnapReader {
            tree: Arc::clone(&self.inner),
            chain,
            root,
        })
    }

    /// True when `root` is resolvable (the base root or a live layer).
    pub fn has_root(&self, root: H256) -> bool {
        let inner = self.inner.read().unwrap();
        root == inner.base.root() || inner.layers.contains_key(&root)
    }

    /// Number of live diff layers.
    pub fn layer_count(&self) -> usize {
        self.inner.read().unwrap().layers.len()
    }

    /// The flat base's current root.
    pub fn base_root(&self) -> H256 {
        self.inner.read().unwrap().base.root()
    }

    /// The flat base's current height.
    pub fn base_height(&self) -> u64 {
        self.inner.read().unwrap().base.height()
    }

    /// Durable byte length of the flat log (0 in memory mode).
    pub fn flat_len(&self) -> u64 {
        self.inner.read().unwrap().base.flat_len()
    }

    /// Indexed keys in the flat base.
    pub fn base_key_count(&self) -> usize {
        self.inner.read().unwrap().base.key_count()
    }
}

/// The layer chain from `root` (exclusive of the base) down to the base
/// root, newest first. Empty when `root` *is* the base root.
fn chain_of(inner: &TreeInner, root: H256) -> Result<Vec<Arc<DiffLayer>>, SnapError> {
    let mut chain = Vec::new();
    let mut cursor = root;
    while cursor != inner.base.root() {
        match inner.layers.get(&cursor) {
            Some(layer) => {
                cursor = layer.parent;
                chain.push(Arc::clone(layer));
            }
            None => return Err(SnapError::UnknownRoot(root)),
        }
    }
    Ok(chain)
}

/// Drops layers no longer anchored (transitively) to the base root.
fn gc_unreachable(inner: &mut TreeInner) {
    let base_root = inner.base.root();
    let mut reachable: HashSet<H256> = HashSet::new();
    loop {
        let mut changed = false;
        for (root, layer) in &inner.layers {
            if !reachable.contains(root)
                && (layer.parent == base_root || reachable.contains(&layer.parent))
            {
                reachable.insert(*root);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    inner.layers.retain(|root, _| reachable.contains(root));
}

/// Writes the retained layer set into `layers.<gen+1>.log` (height order,
/// so parents precede children on replay) and swings the journal handle.
/// Durable once the caller writes the meta.
fn rewrite_journal(inner: &mut TreeInner) -> Result<(), SnapError> {
    let mut retained: Vec<&Arc<DiffLayer>> = inner.layers.values().collect();
    retained.sort_by_key(|l| (l.height, l.root));
    let mut bytes = Vec::new();
    for layer in retained {
        bytes.extend_from_slice(&encode_record(&LayerRecord {
            root: layer.root,
            parent: layer.parent,
            height: layer.height,
            delta: layer.delta.clone(),
        }));
    }
    let p = inner
        .persist
        .as_mut()
        .expect("rewrite requires persistence");
    p.layer_gen += 1;
    let jpath = meta::layers_path(&p.dir, p.layer_gen);
    let journal = OpenOptions::new()
        .read(true)
        .append(true)
        .create(true)
        .open(&jpath)?;
    journal.set_len(0)?;
    let mut journal = journal;
    journal.write_all(&bytes)?;
    journal.sync_data()?;
    p.journal = journal;
    p.layers_len = bytes.len() as u64;
    Ok(())
}

/// Durably records the current (base, journal) pair in the next meta slot.
fn write_meta(inner: &mut TreeInner) -> Result<(), SnapError> {
    let (file_gen, flat_len, root, height) = (
        inner.base.file_gen(),
        inner.base.flat_len(),
        inner.base.root(),
        inner.base.height(),
    );
    let p = inner
        .persist
        .as_mut()
        .expect("meta write requires persistence");
    let m = SnapMeta {
        generation: p.generation,
        file_gen,
        flat_len,
        layer_gen: p.layer_gen,
        layers_len: p.layers_len,
        root,
        height,
    };
    meta::write_slot(&p.dir, p.slot, &m)?;
    p.slot = 1 - p.slot;
    p.generation += 1;
    Ok(())
}

/// Deletes flat-file and journal generations other than the current ones.
/// Call only after the current pair is durably recorded in the meta.
fn cleanup_stale(inner: &TreeInner) -> Result<(), SnapError> {
    let p = match &inner.persist {
        Some(p) => p,
        None => return Ok(()),
    };
    inner.base.remove_stale_files()?;
    for entry in std::fs::read_dir(&p.dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(gen) = name
            .strip_prefix("layers.")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|g| g.parse::<u64>().ok())
        {
            if gen != p.layer_gen {
                std::fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

/// A [`StateReader`] for one root: probes the pinned layer chain newest
/// first, then the flat base. Zero slot values and `None` entries read as
/// absent, matching [`bp_state::MapReader`] semantics exactly.
pub struct SnapReader {
    tree: Arc<RwLock<TreeInner>>,
    chain: Vec<Arc<DiffLayer>>,
    root: H256,
}

impl SnapReader {
    /// The root this reader resolves.
    pub fn root(&self) -> H256 {
        self.root
    }

    /// How many layers a worst-case miss probes before the base.
    pub fn depth(&self) -> usize {
        self.chain.len()
    }
}

impl std::fmt::Debug for SnapReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapReader")
            .field("root", &self.root)
            .field("depth", &self.chain.len())
            .finish()
    }
}

impl StateReader for SnapReader {
    fn base_account(&self, addr: &Address) -> Option<BaseAccount> {
        for layer in &self.chain {
            if let Some(entry) = layer.delta.accounts.get(addr) {
                return entry.clone();
            }
        }
        let inner = self.tree.read().unwrap();
        inner
            .base
            .account(addr)
            .expect("flat base read failed (io)")
    }

    fn base_storage(&self, addr: &Address, slot: &H256) -> Option<U256> {
        for layer in &self.chain {
            if let Some(entry) = layer.delta.storage.get(addr).and_then(|s| s.get(slot)) {
                return entry.filter(|v| !v.is_zero());
            }
        }
        let inner = self.tree.read().unwrap();
        inner
            .base
            .slot(addr, slot)
            .expect("flat base read failed (io)")
    }

    fn base_storage_entries(&self, addr: &Address) -> Vec<(H256, U256)> {
        let mut merged: HashMap<H256, U256> = {
            let inner = self.tree.read().unwrap();
            inner
                .base
                .storage_entries(addr)
                .expect("flat base read failed (io)")
                .into_iter()
                .collect()
        };
        // Oldest layer first, so newer writes win.
        for layer in self.chain.iter().rev() {
            if let Some(slots) = layer.delta.storage.get(addr) {
                for (slot, value) in slots {
                    match value {
                        Some(v) if !v.is_zero() => {
                            merged.insert(*slot, *v);
                        }
                        _ => {
                            merged.remove(slot);
                        }
                    }
                }
            }
        }
        merged.into_iter().collect()
    }

    fn base_accounts(&self) -> Vec<Address> {
        let mut addrs: HashSet<Address> = {
            let inner = self.tree.read().unwrap();
            inner.base.addresses().into_iter().collect()
        };
        for layer in &self.chain {
            addrs.extend(layer.delta.accounts.keys().copied());
            addrs.extend(layer.delta.storage.keys().copied());
        }
        addrs.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use bp_state::MapReader;

    fn acct(n: u64) -> Option<BaseAccount> {
        Some(BaseAccount {
            nonce: n,
            balance: U256::from(1000 + n),
            code: Arc::new(Vec::new()),
        })
    }

    fn delta_set(addr: u64, nonce: u64, slot: u64, value: u64) -> StateDelta {
        let mut d = StateDelta::default();
        d.accounts.insert(Address::from_index(addr), acct(nonce));
        d.storage
            .entry(Address::from_index(addr))
            .or_default()
            .insert(H256::from_low_u64(slot), Some(U256::from(value)));
        d
    }

    fn root(n: u64) -> H256 {
        H256::from_low_u64(0xB10C_0000 + n)
    }

    #[test]
    fn layers_stack_and_probe_newest_first() {
        let tree = SnapTree::memory();
        let base_root = tree.base_root();
        tree.add_layer(root(1), base_root, 1, delta_set(1, 1, 7, 10))
            .unwrap();
        tree.add_layer(root(2), root(1), 2, delta_set(1, 2, 7, 20))
            .unwrap();
        let r1 = tree.reader(root(1)).unwrap();
        let r2 = tree.reader(root(2)).unwrap();
        let a = Address::from_index(1);
        let s = H256::from_low_u64(7);
        assert_eq!(r1.base_account(&a).unwrap().nonce, 1);
        assert_eq!(r2.base_account(&a).unwrap().nonce, 2);
        assert_eq!(r1.base_storage(&a, &s), Some(U256::from(10u64)));
        assert_eq!(r2.base_storage(&a, &s), Some(U256::from(20u64)));
        assert!(tree.reader(H256::from_low_u64(999)).is_err());
    }

    #[test]
    fn sibling_forks_diverge_and_prune() {
        let tree = SnapTree::memory();
        let base_root = tree.base_root();
        tree.add_layer(root(1), base_root, 1, delta_set(1, 1, 7, 10))
            .unwrap();
        // Two same-height siblings over layer 1.
        tree.add_layer(root(21), root(1), 2, delta_set(1, 2, 7, 21))
            .unwrap();
        tree.add_layer(root(22), root(1), 2, delta_set(1, 2, 7, 22))
            .unwrap();
        tree.add_layer(root(3), root(21), 3, delta_set(2, 1, 1, 3))
            .unwrap();
        assert_eq!(tree.layer_count(), 4);
        // Flatten to keep just one layer along the canonical chain; the
        // loser sibling (root 22) hangs below the new base and is pruned.
        let folded = tree.retain(root(3), 1).unwrap();
        assert_eq!(folded, 2);
        assert_eq!(tree.base_root(), root(21));
        assert_eq!(tree.layer_count(), 1);
        assert!(!tree.has_root(root(22)));
        let r = tree.reader(root(3)).unwrap();
        let a = Address::from_index(1);
        assert_eq!(
            r.base_storage(&a, &H256::from_low_u64(7)),
            Some(U256::from(21u64))
        );
    }

    #[test]
    fn folded_reads_match_map_reader_oracle() {
        let tree = SnapTree::memory();
        let mut oracle = MapReader::new();
        let mut parent = tree.base_root();
        for h in 1..=8u64 {
            let d = delta_set(h % 3, h, h % 4, 100 + h);
            oracle.apply(&d);
            tree.add_layer(root(h), parent, h, d).unwrap();
            parent = root(h);
        }
        tree.retain(root(8), 2).unwrap();
        let r = tree.reader(root(8)).unwrap();
        for addr in oracle.base_accounts() {
            assert_eq!(r.base_account(&addr), oracle.base_account(&addr));
            let mut got = r.base_storage_entries(&addr);
            let mut want = oracle.base_storage_entries(&addr);
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_block_layer_is_idempotent_noop() {
        let tree = SnapTree::memory();
        let base_root = tree.base_root();
        tree.add_layer(root(1), base_root, 1, delta_set(1, 1, 7, 10))
            .unwrap();
        // Empty block: root == parent.
        assert!(!tree
            .add_layer(root(1), root(1), 2, StateDelta::default())
            .unwrap());
        // Replay of a known block.
        assert!(!tree
            .add_layer(root(1), base_root, 1, delta_set(1, 1, 7, 10))
            .unwrap());
        assert_eq!(tree.layer_count(), 1);
        // Unknown parent is an error.
        assert!(tree
            .add_layer(root(9), H256::from_low_u64(777), 9, StateDelta::default())
            .is_err());
    }

    #[test]
    fn persistent_tree_reopens_where_it_left_off() {
        let dir = test_dir("snaptree-reopen");
        let a = Address::from_index(1);
        let s = H256::from_low_u64(7);
        {
            let tree = SnapTree::open(&dir).unwrap();
            let mut parent = tree.base_root();
            for h in 1..=6u64 {
                tree.add_layer(root(h), parent, h, delta_set(1, h, 7, 10 * h))
                    .unwrap();
                parent = root(h);
            }
            tree.retain(root(6), 2).unwrap();
            assert_eq!(tree.base_root(), root(4));
        }
        {
            let tree = SnapTree::open(&dir).unwrap();
            assert_eq!(tree.base_root(), root(4));
            assert_eq!(tree.base_height(), 4);
            assert_eq!(tree.layer_count(), 2);
            let r = tree.reader(root(6)).unwrap();
            assert_eq!(r.base_account(&a).unwrap().nonce, 6);
            assert_eq!(r.base_storage(&a, &s), Some(U256::from(60u64)));
            let r4 = tree.reader(root(4)).unwrap();
            assert_eq!(r4.base_account(&a).unwrap().nonce, 4);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_rebuilds_base_on_fresh_generation() {
        let dir = test_dir("snaptree-reset");
        let tree = SnapTree::open(&dir).unwrap();
        let mut parent = tree.base_root();
        for h in 1..=4u64 {
            tree.add_layer(root(h), parent, h, delta_set(1, h, 7, h))
                .unwrap();
            parent = root(h);
        }
        tree.retain(root(4), 0).unwrap();
        assert_eq!(tree.base_height(), 4);
        let genesis = delta_set(9, 1, 1, 1);
        tree.reset(&genesis, root(100), 0).unwrap();
        assert_eq!(tree.base_root(), root(100));
        assert_eq!(tree.base_height(), 0);
        assert_eq!(tree.layer_count(), 0);
        let reopened = SnapTree::open(&dir).unwrap();
        assert_eq!(reopened.base_root(), root(100));
        let r = reopened.reader(root(100)).unwrap();
        assert_eq!(r.base_account(&Address::from_index(9)).unwrap().nonce, 1);
        assert_eq!(r.base_account(&Address::from_index(1)), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_slot_write_reads_as_absent() {
        let tree = SnapTree::memory();
        let base_root = tree.base_root();
        tree.add_layer(root(1), base_root, 1, delta_set(1, 1, 7, 10))
            .unwrap();
        let mut d = StateDelta::default();
        d.storage
            .entry(Address::from_index(1))
            .or_default()
            .insert(H256::from_low_u64(7), Some(U256::ZERO));
        tree.add_layer(root(2), root(1), 2, d).unwrap();
        let r = tree.reader(root(2)).unwrap();
        let a = Address::from_index(1);
        assert_eq!(r.base_storage(&a, &H256::from_low_u64(7)), None);
        assert!(r.base_storage_entries(&a).is_empty());
        // And the zero survives a fold into the base.
        tree.retain(root(2), 0).unwrap();
        let r = tree.reader(root(2)).unwrap();
        assert_eq!(r.base_storage(&a, &H256::from_low_u64(7)), None);
    }
}
