//! End-to-end equivalence: a `WorldState` reading through a snapshot-tree
//! stack (diff layers over the flat base) must be observationally identical
//! to a fully resident `WorldState` fed the same writes — identical state
//! roots after every block, identical point reads after every rebase, even
//! as the tree flattens old layers into its base mid-run.
//!
//! This mirrors the validator's storage profile: execute a block on a
//! base-backed world, distill its delta via the touched keys, stack the
//! delta as a diff layer, and rebase the world onto the new root's reader.

use std::collections::HashSet;
use std::sync::Arc;

use bp_snap::{test_dir, SnapTree};
use bp_state::WorldState;
use bp_types::{AccessKey, Address, H256, U256};

/// xorshift64* (same generator as the oracle test; no crates available).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn genesis(n: u64) -> WorldState {
    let mut w = WorldState::new();
    for i in 0..n {
        let a = Address::from_index(i);
        w.set_balance(a, U256::from(1_000_000u64 + i));
        if i % 3 == 0 {
            w.set_storage(a, H256::from_low_u64(i % 5), U256::from(i + 1));
        }
    }
    w
}

/// Applies one random "block" of writes to both worlds, returning the
/// touched access keys (what the validator would distill a delta from).
fn mutate_block(
    rng: &mut Rng,
    resident: &mut WorldState,
    layered: &mut WorldState,
) -> HashSet<AccessKey> {
    let mut keys = HashSet::new();
    for _ in 0..(rng.below(6) + 2) {
        let addr = Address::from_index(rng.below(24));
        match rng.below(8) {
            0 | 1 => {
                let v = U256::from(rng.below(1_000_000));
                resident.set_balance(addr, v);
                layered.set_balance(addr, v);
                keys.insert(AccessKey::Balance(addr));
            }
            2 => {
                let n = rng.below(100);
                resident.set_nonce(addr, n);
                layered.set_nonce(addr, n);
                keys.insert(AccessKey::Nonce(addr));
            }
            3 => {
                let code = vec![rng.below(256) as u8; (rng.below(24) + 1) as usize];
                resident.set_code(addr, code.clone());
                layered.set_code(addr, code);
                keys.insert(AccessKey::Code(addr));
            }
            4 => {
                // Zero write: must clear the slot on both sides identically.
                let slot = H256::from_low_u64(rng.below(5));
                resident.set_storage(addr, slot, U256::ZERO);
                layered.set_storage(addr, slot, U256::ZERO);
                keys.insert(AccessKey::Storage(addr, slot));
            }
            _ => {
                let slot = H256::from_low_u64(rng.below(5));
                let v = U256::from(rng.below(5000) + 1);
                resident.set_storage(addr, slot, v);
                layered.set_storage(addr, slot, v);
                keys.insert(AccessKey::Storage(addr, slot));
            }
        }
    }
    keys
}

fn assert_reads_equal(resident: &WorldState, layered: &WorldState, ctx: &str) {
    for i in 0..24u64 {
        let a = Address::from_index(i);
        assert_eq!(
            resident.balance(&a),
            layered.balance(&a),
            "{ctx}: balance {i}"
        );
        assert_eq!(resident.nonce(&a), layered.nonce(&a), "{ctx}: nonce {i}");
        assert_eq!(resident.code(&a), layered.code(&a), "{ctx}: code {i}");
        for s in 0..5u64 {
            let slot = H256::from_low_u64(s);
            assert_eq!(
                resident.storage(&a, &slot),
                layered.storage(&a, &slot),
                "{ctx}: slot {s} of {i}"
            );
        }
    }
}

fn run(seed: u64, dir: Option<&std::path::Path>, blocks: u64, window: usize) {
    let mut rng = Rng::new(seed);
    let mut resident = genesis(16);
    let genesis_root = resident.state_root();

    let tree = match dir {
        Some(d) => SnapTree::open(d).unwrap(),
        None => SnapTree::memory(),
    };
    tree.seed(&resident.full_delta(), genesis_root, 0).unwrap();

    // The layered world starts as a clone, then sheds its residents in
    // favor of reads through the snapshot stack.
    let mut layered = resident.snapshot();
    layered.rebase(Arc::new(tree.reader(genesis_root).unwrap()));
    assert_eq!(layered.state_root(), genesis_root);

    let mut head = genesis_root;
    for b in 1..=blocks {
        let ctx = format!("seed {seed} block {b}");
        let keys = mutate_block(&mut rng, &mut resident, &mut layered);
        let resident_root = resident.state_root();
        let layered_root = layered.state_root();
        assert_eq!(resident_root, layered_root, "{ctx}: state roots diverged");

        // Stack the block's distilled delta and move the read base forward,
        // exactly as the validator's persist path does.
        let delta = layered.delta_for_keys(keys.iter());
        tree.add_layer(layered_root, head, b, delta).unwrap();
        head = layered_root;
        layered.rebase(Arc::new(tree.reader(head).unwrap()));

        assert_eq!(layered.state_root(), resident_root, "{ctx}: after rebase");
        assert_reads_equal(&resident, &layered, &ctx);

        // Keep the window tight so folds happen repeatedly mid-run.
        if b % 3 == 0 {
            tree.retain(head, window).unwrap();
            assert!(tree.has_root(head) || tree.base_root() == head, "{ctx}");
            assert_reads_equal(&resident, &layered, &format!("{ctx}: after fold"));
        }
    }
    assert!(
        tree.layer_count() <= window.max(blocks as usize % 3 + window),
        "window kept the layer stack bounded"
    );
}

#[test]
fn layered_world_matches_resident_in_memory() {
    for seed in [5, 0xACE] {
        run(seed, None, 24, 2);
    }
}

#[test]
fn layered_world_matches_resident_on_disk() {
    let dir = test_dir("layered-world");
    run(0xD15C, Some(&dir), 24, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}
