//! Crash-injection tests for the snapshot subsystem: kill the process at
//! any byte boundary of the flat-base file or the layer journal and assert
//! `SnapTree::open` rolls back to the last durable flatten — never a torn
//! record, never a read that disagrees with the pre-crash durable state.
//!
//! The crash points mirror the write protocol:
//!
//! * `add_layer`: journal append + fsync, then meta swap — a torn journal
//!   tail must roll back exactly one layer;
//! * `retain`: flat-file fold append + fsync, journal rewrite into a fresh
//!   generation, meta swap, stale-file deletion — a crash before the meta
//!   swap must recover the *pre-retain* tree (base untouched, all layers
//!   intact), and a crash after the swap but before the deletions must
//!   ignore the stale files.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use bp_snap::{test_dir, SnapTree};
use bp_state::{BaseAccount, MapReader, StateDelta, StateReader};
use bp_types::{Address, H256, U256};

fn root(n: u64) -> H256 {
    H256::from_low_u64(0xC4A5_0000 + n)
}

fn delta_set(addr: u64, nonce: u64, slot: u64, value: u64) -> StateDelta {
    let mut d = StateDelta::default();
    d.accounts.insert(
        Address::from_index(addr),
        Some(BaseAccount {
            nonce,
            balance: U256::from(1000 + nonce),
            code: Arc::new(Vec::new()),
        }),
    );
    d.storage
        .entry(Address::from_index(addr))
        .or_default()
        .insert(H256::from_low_u64(slot), Some(U256::from(value)));
    d
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn truncate(path: &Path, len: u64) {
    OpenOptions::new()
        .write(true)
        .open(path)
        .unwrap()
        .set_len(len)
        .unwrap();
}

fn append(path: &Path, bytes: &[u8]) {
    let mut f = OpenOptions::new().append(true).open(path).unwrap();
    f.write_all(bytes).unwrap();
}

/// Asserts `reader` answers exactly like the `MapReader` oracle for every
/// address either side knows about.
fn assert_matches_oracle(reader: &dyn StateReader, oracle: &MapReader, ctx: &str) {
    let mut addrs: Vec<Address> = reader.base_accounts();
    addrs.extend(oracle.accounts.keys().copied());
    addrs.extend(oracle.storage.keys().copied());
    addrs.sort();
    addrs.dedup();
    for addr in addrs {
        assert_eq!(
            reader.base_account(&addr),
            oracle.base_account(&addr),
            "{ctx}: account {addr:?}"
        );
        let mut entries = reader.base_storage_entries(&addr);
        entries.sort();
        let mut expect = oracle.base_storage_entries(&addr);
        expect.sort();
        assert_eq!(entries, expect, "{ctx}: storage of {addr:?}");
        for (slot, value) in expect {
            assert_eq!(
                reader.base_storage(&addr, &slot),
                Some(value),
                "{ctx}: slot {slot:?} of {addr:?}"
            );
        }
    }
}

/// The deltas for genesis plus four chained layers, alongside the oracle
/// state after each prefix. `oracles[i]` = genesis + layers 1..=i.
fn fixture() -> (Vec<StateDelta>, Vec<MapReader>) {
    let genesis = {
        let mut d = delta_set(1, 1, 1, 11);
        d.fold(&delta_set(2, 1, 2, 22));
        d
    };
    let layers = vec![
        delta_set(1, 2, 1, 100),
        delta_set(3, 1, 3, 33),
        // Deletes account 2's body and clears a slot back to zero.
        {
            let mut d = StateDelta::default();
            d.accounts.insert(Address::from_index(2), None);
            d.storage
                .entry(Address::from_index(1))
                .or_default()
                .insert(H256::from_low_u64(1), None);
            d
        },
        delta_set(2, 9, 2, 99),
    ];
    let mut oracles = Vec::new();
    let mut m = MapReader::new();
    m.apply(&genesis);
    oracles.push(m.clone());
    let mut all = vec![genesis];
    for d in layers {
        m.apply(&d);
        oracles.push(m.clone());
        all.push(d);
    }
    (all, oracles)
}

/// Seeds `dir` with the fixture genesis and stacks its four layers,
/// recording the journal length after each. Returns the lengths.
fn build_chain(dir: &Path, deltas: &[StateDelta]) -> Vec<u64> {
    let tree = SnapTree::open(dir).unwrap();
    tree.seed(&deltas[0], root(0), 0).unwrap();
    let journal = journal_file(dir);
    let mut lens = vec![std::fs::metadata(&journal).unwrap().len()];
    for (i, d) in deltas[1..].iter().enumerate() {
        let h = i as u64 + 1;
        tree.add_layer(root(h), root(h - 1), h, d.clone()).unwrap();
        lens.push(std::fs::metadata(&journal).unwrap().len());
    }
    lens
}

/// The single `layers.<gen>.log` currently present under `dir`.
fn journal_file(dir: &Path) -> std::path::PathBuf {
    snap_file(dir, "layers.")
}

/// The single `flat.<gen>.log` currently present under `dir`.
fn flat_file(dir: &Path) -> std::path::PathBuf {
    snap_file(dir, "flat.")
}

fn snap_file(dir: &Path, prefix: &str) -> std::path::PathBuf {
    let mut found: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".log"))
        })
        .collect();
    assert_eq!(found.len(), 1, "expected exactly one {prefix}*.log");
    found.pop().unwrap()
}

/// A torn tail in the layer journal — the crash landed mid-append inside
/// `add_layer` — must surface as a rollback of exactly that layer: the
/// newest meta no longer fits the file, the previous generation wins.
#[test]
fn torn_journal_tail_rolls_back_one_layer() {
    let dir = test_dir("crash-journal");
    let (deltas, oracles) = fixture();
    let lens = build_chain(&dir, &deltas);
    let (before_l4, after_l4) = (lens[3], lens[4]);
    assert!(after_l4 > before_l4, "layer 4 appended journal bytes");

    for cut in before_l4..after_l4 {
        let scratch = test_dir("crash-journal-cut");
        copy_dir(&dir, &scratch);
        truncate(&journal_file(&scratch), cut);
        let tree = SnapTree::open(&scratch)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert!(!tree.has_root(root(4)), "torn layer visible at cut {cut}");
        assert!(tree.has_root(root(3)), "durable layer lost at cut {cut}");
        assert_eq!(tree.layer_count(), 3, "cut {cut}");
        let reader = tree.reader(root(3)).unwrap();
        assert_matches_oracle(&reader, &oracles[3], &format!("cut {cut}"));
        std::fs::remove_dir_all(&scratch).unwrap();
    }

    // The untruncated directory still opens at the full chain.
    let full = SnapTree::open(&dir).unwrap();
    assert!(full.has_root(root(4)));
    assert_matches_oracle(&full.reader(root(4)).unwrap(), &oracles[4], "full");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash mid-fold inside `retain` leaves a torn tail on the flat-base
/// file but no new meta: every byte prefix of the fold's append must
/// recover the complete *pre-retain* tree, reads included.
#[test]
fn torn_flat_fold_recovers_pre_retain_state() {
    let dir = test_dir("crash-flat");
    let (deltas, oracles) = fixture();
    build_chain(&dir, &deltas);

    // Freeze the pre-retain directory, then run the retain for real to
    // learn exactly which bytes the fold appends to the flat file.
    let pre = test_dir("crash-flat-pre");
    copy_dir(&dir, &pre);
    let flat_before = std::fs::read(flat_file(&dir)).unwrap();
    {
        let tree = SnapTree::open(&dir).unwrap();
        let folded = tree.retain(root(4), 1).unwrap();
        assert_eq!(folded, 3);
    }
    let flat_after = std::fs::read(flat_file(&dir)).unwrap();
    assert_eq!(
        &flat_after[..flat_before.len()],
        &flat_before[..],
        "fold must append, not rewrite"
    );
    let suffix = &flat_after[flat_before.len()..];
    assert!(!suffix.is_empty(), "fold appended flat records");

    for cut in 0..=suffix.len() {
        let scratch = test_dir("crash-flat-cut");
        copy_dir(&pre, &scratch);
        append(&flat_file(&scratch), &suffix[..cut]);
        let tree = SnapTree::open(&scratch)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        // No meta swap happened: the whole retain must be invisible.
        assert_eq!(tree.base_root(), root(0), "cut {cut}");
        assert_eq!(tree.layer_count(), 4, "cut {cut}");
        for h in 1..=4u64 {
            assert!(tree.has_root(root(h)), "layer {h} lost at cut {cut}");
            let reader = tree.reader(root(h)).unwrap();
            assert_matches_oracle(
                &reader,
                &oracles[h as usize],
                &format!("cut {cut} layer {h}"),
            );
        }
        std::fs::remove_dir_all(&scratch).unwrap();
    }
    std::fs::remove_dir_all(&pre).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash between the journal rewrite and the meta swap: the fold bytes
/// and a complete (or partial) next-generation journal are on disk, but the
/// authoritative meta still points at the old generation pair — the
/// pre-retain tree must come back and the phantom files must not confuse
/// recovery.
#[test]
fn unswapped_journal_generation_is_invisible() {
    let dir = test_dir("crash-gen");
    let (deltas, oracles) = fixture();
    build_chain(&dir, &deltas);
    let pre = test_dir("crash-gen-pre");
    copy_dir(&dir, &pre);
    let flat_before_len = std::fs::metadata(flat_file(&dir)).unwrap().len();
    let old_journal_name = journal_file(&dir).file_name().unwrap().to_os_string();
    {
        let tree = SnapTree::open(&dir).unwrap();
        tree.retain(root(4), 1).unwrap();
    }
    let flat_after = std::fs::read(flat_file(&dir)).unwrap();
    let new_journal = journal_file(&dir);
    assert_ne!(
        new_journal.file_name().unwrap(),
        old_journal_name.as_os_str()
    );
    let new_journal_bytes = std::fs::read(&new_journal).unwrap();

    // Crash points: the rewritten journal exists at 0%, 50%, and 100% of
    // its bytes (its own torn tail is covered byte-granularly above for
    // appends; the rewrite is only ever read once a meta references it).
    for frac in [0usize, new_journal_bytes.len() / 2, new_journal_bytes.len()] {
        let scratch = test_dir("crash-gen-cut");
        copy_dir(&pre, &scratch);
        append(
            &flat_file(&scratch),
            &flat_after[flat_before_len as usize..],
        );
        std::fs::write(
            scratch.join(new_journal.file_name().unwrap()),
            &new_journal_bytes[..frac],
        )
        .unwrap();
        let tree = SnapTree::open(&scratch)
            .unwrap_or_else(|e| panic!("recovery failed at frac {frac}: {e}"));
        assert_eq!(tree.base_root(), root(0), "frac {frac}");
        assert_eq!(tree.layer_count(), 4, "frac {frac}");
        let reader = tree.reader(root(4)).unwrap();
        assert_matches_oracle(&reader, &oracles[4], &format!("frac {frac}"));
        std::fs::remove_dir_all(&scratch).unwrap();
    }
    std::fs::remove_dir_all(&pre).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash after the meta swap but before the stale old-generation files
/// are deleted: recovery must land on the *post-retain* state and sweep
/// (or at least ignore) the leftovers.
#[test]
fn stale_files_after_meta_swap_are_ignored() {
    let dir = test_dir("crash-stale");
    let (deltas, oracles) = fixture();
    build_chain(&dir, &deltas);
    let old_journal = journal_file(&dir);
    let old_journal_bytes = std::fs::read(&old_journal).unwrap();
    let old_journal_name = old_journal.file_name().unwrap().to_os_string();
    {
        let tree = SnapTree::open(&dir).unwrap();
        tree.retain(root(4), 1).unwrap();
    }
    // Resurrect the stale journal the crash would have left behind.
    std::fs::write(dir.join(&old_journal_name), &old_journal_bytes).unwrap();

    let tree = SnapTree::open(&dir).unwrap();
    assert_eq!(tree.base_root(), root(3), "retain folded through layer 3");
    assert_eq!(tree.layer_count(), 1);
    assert!(tree.has_root(root(4)));
    assert_matches_oracle(&tree.reader(root(4)).unwrap(), &oracles[4], "post-swap");
    // Reopen swept the stale generation.
    assert!(
        !dir.join(&old_journal_name).exists(),
        "stale journal survived recovery"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
