//! Property-style oracle test: a `SnapTree` driven through random
//! commit / fork / flatten / reopen sequences must answer every read
//! exactly like a per-root `MapReader` oracle (a plain `HashMap` mirror of
//! the same deltas).
//!
//! proptest is not vendored in this workspace, so the generator is a
//! hand-rolled xorshift PRNG over fixed seeds — deterministic, replayable
//! by seed, and byte-for-byte stable across runs. The sequences include
//! forked same-height siblings, account/slot deletions, zero-value writes
//! (which must read back as absent), empty-delta layers, idempotent
//! re-adds, window flattens that strand loser forks below the new base,
//! and (in file mode) full reopen-from-disk between operations.

use std::collections::HashMap;
use std::sync::Arc;

use bp_snap::{test_dir, SnapTree};
use bp_state::{BaseAccount, MapReader, StateDelta, StateReader};
use bp_types::{Address, H256, U256};

/// xorshift64* — deterministic, no external crates, good enough spread for
/// structural fuzzing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn root_id(n: u64) -> H256 {
    H256::from_low_u64(0x1000_0000 + n)
}

/// A random delta over a small universe of addresses and slots, mixing
/// upserts, body deletions, slot deletions, and explicit zero writes.
fn random_delta(rng: &mut Rng) -> StateDelta {
    let mut d = StateDelta::default();
    let ops = rng.below(5) + 1;
    for _ in 0..ops {
        let addr = Address::from_index(rng.below(8));
        match rng.below(10) {
            0 => {
                d.accounts.insert(addr, None);
            }
            1..=4 => {
                d.accounts.insert(
                    addr,
                    Some(BaseAccount {
                        nonce: rng.below(50),
                        balance: U256::from(rng.below(1_000_000)),
                        code: Arc::new(Vec::new()),
                    }),
                );
            }
            5 => {
                d.storage
                    .entry(addr)
                    .or_default()
                    .insert(H256::from_low_u64(rng.below(6)), None);
            }
            6 => {
                // An explicit zero write must behave exactly like a delete.
                d.storage
                    .entry(addr)
                    .or_default()
                    .insert(H256::from_low_u64(rng.below(6)), Some(U256::ZERO));
            }
            _ => {
                d.storage.entry(addr).or_default().insert(
                    H256::from_low_u64(rng.below(6)),
                    Some(U256::from(rng.below(9999) + 1)),
                );
            }
        }
    }
    d
}

/// The oracle side: per-live-root flat maps plus the parent/height shape of
/// the layer tree, updated by the same rules the real tree promises.
struct Model {
    base_root: H256,
    oracles: HashMap<H256, MapReader>,
    parents: HashMap<H256, H256>,
    heights: HashMap<H256, u64>,
}

impl Model {
    fn new(base_root: H256, genesis: MapReader) -> Self {
        let mut oracles = HashMap::new();
        oracles.insert(base_root, genesis);
        let mut heights = HashMap::new();
        heights.insert(base_root, 0);
        Model {
            base_root,
            oracles,
            parents: HashMap::new(),
            heights,
        }
    }

    fn live_roots(&self) -> Vec<H256> {
        let mut v: Vec<H256> = self.oracles.keys().copied().collect();
        v.sort();
        v
    }

    fn commit(&mut self, parent: H256, root: H256, delta: &StateDelta) -> u64 {
        let mut oracle = self.oracles[&parent].clone();
        oracle.apply(delta);
        let height = self.heights[&parent] + 1;
        self.oracles.insert(root, oracle);
        self.parents.insert(root, parent);
        self.heights.insert(root, height);
        height
    }

    /// Mirrors `SnapTree::retain(head, keep)`: fold the chain beyond `keep`
    /// into the base and drop every layer no longer reachable from the new
    /// base via parent links.
    fn retain(&mut self, head: H256, keep: usize) {
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(p) = self.parents.get(&cur) {
            cur = *p;
            chain.push(cur);
        }
        // chain = [head .. first-layer, base_root]; layers only:
        chain.pop();
        if chain.len() <= keep {
            return;
        }
        let new_base = chain[keep];
        // Reachability fixpoint from the new base over parent links.
        let mut survivors: Vec<H256> = vec![new_base];
        loop {
            let before = survivors.len();
            for (root, parent) in &self.parents {
                if survivors.contains(parent) && !survivors.contains(root) {
                    survivors.push(*root);
                }
            }
            if survivors.len() == before {
                break;
            }
        }
        self.oracles.retain(|r, _| survivors.contains(r));
        self.parents
            .retain(|r, _| survivors.contains(r) && *r != new_base);
        self.heights.retain(|r, _| survivors.contains(r));
        self.base_root = new_base;
    }
}

/// Every live root's reader must agree with its oracle on every account
/// body, every storage slot, and the full storage-entry listing.
fn check(tree: &SnapTree, model: &Model, ctx: &str) {
    assert_eq!(tree.base_root(), model.base_root, "{ctx}: base root");
    assert_eq!(
        tree.layer_count(),
        model.oracles.len() - 1,
        "{ctx}: layer count"
    );
    for root in model.live_roots() {
        let reader = tree
            .reader(root)
            .unwrap_or_else(|e| panic!("{ctx}: live root {root:?} unreadable: {e}"));
        let oracle = &model.oracles[&root];
        let mut addrs: Vec<Address> = reader.base_accounts();
        addrs.extend(oracle.accounts.keys().copied());
        addrs.extend(oracle.storage.keys().copied());
        addrs.sort();
        addrs.dedup();
        for addr in addrs {
            assert_eq!(
                reader.base_account(&addr),
                oracle.base_account(&addr),
                "{ctx}: root {root:?} account {addr:?}"
            );
            let mut got = reader.base_storage_entries(&addr);
            got.sort();
            let mut want = oracle.base_storage_entries(&addr);
            want.sort();
            assert_eq!(got, want, "{ctx}: root {root:?} storage of {addr:?}");
            for slot in 0..6u64 {
                let slot = H256::from_low_u64(slot);
                assert_eq!(
                    reader.base_storage(&addr, &slot),
                    oracle.base_storage(&addr, &slot),
                    "{ctx}: root {root:?} slot {slot:?} of {addr:?}"
                );
            }
        }
    }
}

/// One full random run against `tree`; `dir` enables reopen-from-disk
/// crash-free restarts between operations when present.
fn run_sequence(seed: u64, dir: Option<&std::path::Path>) {
    let mut rng = Rng::new(seed);
    let mut next_root = 1u64;

    let tree = match dir {
        Some(d) => SnapTree::open(d).unwrap(),
        None => SnapTree::memory(),
    };
    let genesis_delta = {
        let mut d = StateDelta::default();
        for i in 0..4u64 {
            d.fold(&random_delta(&mut rng));
            d.accounts
                .entry(Address::from_index(i))
                .or_insert(Some(BaseAccount {
                    nonce: i,
                    balance: U256::from(1000u64),
                    code: Arc::new(Vec::new()),
                }));
        }
        d
    };
    let base_root = root_id(0);
    tree.seed(&genesis_delta, base_root, 0).unwrap();
    let mut genesis_oracle = MapReader::new();
    genesis_oracle.apply(&genesis_delta);
    let mut model = Model::new(base_root, genesis_oracle);

    let mut tree = tree;
    for step in 0..70u64 {
        let ctx = format!("seed {seed} step {step}");
        let live = model.live_roots();
        match rng.below(10) {
            // Flatten: random live head, random window.
            0 | 1 => {
                let head = live[rng.below(live.len() as u64) as usize];
                let keep = rng.below(3) as usize;
                tree.retain(head, keep)
                    .unwrap_or_else(|e| panic!("{ctx}: retain({head:?}, {keep}) failed: {e}"));
                model.retain(head, keep);
            }
            // Idempotent re-add of a known root must be a no-op.
            2 if !model.parents.is_empty() => {
                let known: Vec<H256> = model.parents.keys().copied().collect();
                let victim = known[rng.below(known.len() as u64) as usize];
                let parent = model.parents[&victim];
                let h = model.heights[&victim];
                let added = tree
                    .add_layer(victim, parent, h, StateDelta::default())
                    .unwrap();
                assert!(!added, "{ctx}: re-add of {victim:?} was not a no-op");
            }
            // Commit a child of a random live root — picking non-tip
            // parents naturally produces forked same-height siblings.
            _ => {
                let parent = live[rng.below(live.len() as u64) as usize];
                let root = root_id(next_root);
                next_root += 1;
                let delta = if rng.below(12) == 0 {
                    StateDelta::default() // empty block
                } else {
                    random_delta(&mut rng)
                };
                let height = model.commit(parent, root, &delta);
                let added = tree.add_layer(root, parent, height, delta).unwrap();
                assert!(added, "{ctx}: fresh root {root:?} rejected");
            }
        }
        // Unknown roots must stay unreadable.
        assert!(tree.reader(root_id(0xDEAD_0000)).is_err(), "{ctx}");
        check(&tree, &model, &ctx);

        // File mode: periodically drop everything and recover from disk.
        if let Some(d) = dir {
            if rng.below(7) == 0 {
                drop(tree);
                tree = SnapTree::open(d).unwrap();
                check(&tree, &model, &format!("{ctx} (reopened)"));
            }
        }
    }
}

#[test]
fn random_sequences_match_oracle_in_memory() {
    for seed in [3, 7, 0xBEEF, 0x5EED_5EED] {
        run_sequence(seed, None);
    }
}

#[test]
fn random_sequences_match_oracle_on_disk_with_reopens() {
    for seed in [11, 0xCAFE, 0x1234_5678] {
        let dir = test_dir("oracle");
        run_sequence(seed, Some(&dir));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
