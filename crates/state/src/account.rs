//! The Ethereum account: the RLP structure stored in the state trie.

use bp_crypto::keccak256;
use bp_crypto::rlp::{self, DecodeError, RlpStream};
use bp_types::{H256, U256};

use crate::trie;

/// Hash of empty code: `keccak256("")`.
pub fn empty_code_hash() -> H256 {
    keccak256(&[])
}

/// The four-field account body committed into the state trie:
/// `[nonce, balance, storage_root, code_hash]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Account {
    /// Transaction count for EOAs / creation count for contracts.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Root of the account's storage trie.
    pub storage_root: H256,
    /// Keccak hash of the account's code.
    pub code_hash: H256,
}

impl Default for Account {
    fn default() -> Self {
        Account {
            nonce: 0,
            balance: U256::ZERO,
            storage_root: trie::empty_root(),
            code_hash: empty_code_hash(),
        }
    }
}

impl Account {
    /// True iff the account is indistinguishable from a non-existent one
    /// (EIP-161 emptiness).
    pub fn is_empty(&self) -> bool {
        self.nonce == 0 && self.balance.is_zero() && self.code_hash == empty_code_hash()
    }

    /// RLP encoding as stored in the state trie.
    pub fn rlp_encode(&self) -> Vec<u8> {
        let mut s = RlpStream::new();
        s.begin_list(4);
        s.append_u64(self.nonce);
        s.append_u256(&self.balance);
        s.append_h256(&self.storage_root);
        s.append_h256(&self.code_hash);
        s.out()
    }

    /// Strict decoding of the trie representation.
    pub fn rlp_decode(data: &[u8]) -> Result<Account, DecodeError> {
        let item = rlp::decode(data)?;
        let l = item.as_list()?;
        if l.len() != 4 {
            return Err(DecodeError::TypeMismatch);
        }
        Ok(Account {
            nonce: l[0].as_u64()?,
            balance: l[1].as_u256()?,
            storage_root: l[2].as_h256()?,
            code_hash: l[3].as_h256()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        let a = Account::default();
        assert!(a.is_empty());
        assert_eq!(a.storage_root, trie::empty_root());
        assert_eq!(a.code_hash, empty_code_hash());
    }

    #[test]
    fn empty_code_hash_matches_keccak_of_nothing() {
        assert_eq!(
            format!("{:?}", empty_code_hash()),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn rlp_roundtrip() {
        let a = Account {
            nonce: 42,
            balance: U256::from(10u64).pow(U256::from(18u64)),
            storage_root: H256::from_low_u64(7),
            code_hash: H256::from_low_u64(8),
        };
        let enc = a.rlp_encode();
        assert_eq!(Account::rlp_decode(&enc).unwrap(), a);
    }

    #[test]
    fn nonzero_fields_not_empty() {
        let a = Account {
            nonce: 1,
            ..Account::default()
        };
        assert!(!a.is_empty());
        let b = Account {
            balance: U256::ONE,
            ..Account::default()
        };
        assert!(!b.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Account::rlp_decode(&[0x80]).is_err());
        assert!(Account::rlp_decode(b"not rlp at all").is_err());
        // A 3-element list is not an account.
        let mut s = RlpStream::new();
        s.begin_list(3);
        s.append_u64(1);
        s.append_u64(2);
        s.append_u64(3);
        assert!(Account::rlp_decode(&s.out()).is_err());
    }
}
