//! State substrate: the authenticated world state BlockPilot executes over.
//!
//! * [`trie`] — a faithful Merkle Patricia Trie with proofs;
//! * [`account`] — the 4-field RLP account body;
//! * [`world`] — the flat mutable [`world::WorldState`] plus MPT commitment
//!   ([`world::WorldState::state_root`]);
//! * [`reader`] — the [`reader::StateReader`] base-state seam (implemented
//!   by `bp-snap`'s layered flat state) and the [`reader::StateDelta`]
//!   block-effect records diff layers are made of;
//! * [`mvstate`] — the multi-version overlay serving OCC-WSI snapshots;
//! * [`mvmemory`] — the Block-STM multi-version memory: per-location version
//!   lists keyed by preset transaction index, with ESTIMATE markers.

#![warn(missing_docs)]

pub mod account;
pub mod mvmemory;
pub mod mvstate;
pub mod nibbles;
pub mod reader;
pub mod trie;
pub mod world;

pub use account::Account;
pub use mvmemory::{MvMemory, MvRead, ReadOrigin, ReadValidation};
pub use mvstate::MultiVersionState;
pub use reader::{BaseAccount, MapReader, StateDelta, StateReader};
pub use trie::{
    empty_root, summarize_node, verify_proof, NodeResolver, NodeSummary, Trie, TrieLoadError,
};
pub use world::{code_read_word, storage_root, AccountState, WorldState};
