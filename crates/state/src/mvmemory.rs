//! Multi-version memory for the Block-STM proposer engine.
//!
//! Where [`crate::mvstate::MultiVersionState`] keys its version chains by
//! *commit version* (OCC-WSI allocates versions at commit time, so the chain
//! order is the commit order), Block-STM executes a **preset** transaction
//! order and keys every entry by `(transaction index, incarnation)`. A read
//! by transaction `j` returns the value written by the highest-index
//! transaction `i < j` — the same answer a serial execution of the preset
//! order would see, once every entry is final.
//!
//! Aborted incarnations do not delete their entries: they are flagged as
//! **ESTIMATE** markers ([`MvMemory::convert_to_estimates`]). An ESTIMATE is
//! dependency estimation seeded from the prior abort's write set — the next
//! incarnation will very likely write the same locations, so a reader that
//! lands on one learns *which* transaction it must wait for instead of
//! optimistically reading stale data, executing, failing validation and
//! retrying blind.
//!
//! Every read records a [`ReadOrigin`]; re-validation
//! ([`MvMemory::validate_reads`]) re-resolves each recorded read and compares
//! origins, which is exact (value equality is not enough — ABA through an
//! abort/rewrite must invalidate).

use std::sync::Arc;

use bp_concurrent::ShardedMap;
use bp_types::{AccessKey, Address, WriteSet, U256};
use parking_lot::Mutex;

use crate::world::WorldState;

/// Index of a transaction in the preset block order.
pub type TxIndex = u32;

/// In-block code deployments for one address: `(deployer index, code)`
/// ascending by index.
type CodeVersions = Vec<(TxIndex, Arc<Vec<u8>>)>;

/// Where a read was satisfied from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOrigin {
    /// The pre-block world satisfied the read.
    Base,
    /// Incarnation `incarnation` of preset transaction `tx` satisfied it.
    Version {
        /// Writing transaction's preset index.
        tx: TxIndex,
        /// Which incarnation of that transaction wrote the value.
        incarnation: u32,
    },
}

/// Result of a versioned read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MvRead {
    /// A committed (non-ESTIMATE) value and its origin.
    Value {
        /// The value read.
        value: U256,
        /// Who wrote it.
        origin: ReadOrigin,
    },
    /// The read landed on an ESTIMATE: `writer` aborted and is expected to
    /// rewrite this location. `fallback` is the aborted incarnation's stale
    /// value, letting an infallible reader continue speculatively while the
    /// caller records the dependency.
    Estimate {
        /// The transaction the reader should wait for.
        writer: TxIndex,
        /// Stale value for speculative continuation.
        fallback: U256,
    },
}

/// Outcome of re-validating a transaction's recorded read set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadValidation {
    /// Every read re-resolves to the same origin.
    Valid,
    /// Some read now resolves differently — the incarnation is stale.
    Invalid,
    /// No mismatch, but at least one read landed on an ESTIMATE: the writer
    /// is mid-re-execution, so the verdict is deferred (the scheduler
    /// guarantees a later validation once the writer finishes).
    SawEstimate,
}

#[derive(Clone, Copy)]
struct Entry {
    tx: TxIndex,
    incarnation: u32,
    value: U256,
    estimate: bool,
}

/// The pre-block world plus per-location version lists keyed by preset
/// transaction index, with ESTIMATE markers (Block-STM's multi-version
/// data structure).
pub struct MvMemory {
    base: Arc<WorldState>,
    /// Per-key entries, ascending by transaction index. At most one entry
    /// per transaction per key (the latest recorded incarnation's write).
    data: ShardedMap<AccessKey, Vec<Entry>>,
    /// Code deployed in-block: per address, `(deployer index, code)`
    /// ascending by index.
    code: ShardedMap<Address, CodeVersions>,
    /// Per-transaction bookkeeping for the latest recorded incarnation.
    written: Vec<Mutex<Vec<AccessKey>>>,
    deployed: Vec<Mutex<Vec<Address>>>,
    reads: Vec<Mutex<Vec<(AccessKey, ReadOrigin)>>>,
}

impl MvMemory {
    /// Memory over `base` for a preset block of `txs` transactions, sized
    /// for `threads` workers.
    pub fn new(base: Arc<WorldState>, txs: usize, threads: usize) -> Self {
        MvMemory {
            base,
            data: ShardedMap::for_threads(threads),
            code: ShardedMap::for_threads(threads),
            written: (0..txs).map(|_| Mutex::new(Vec::new())).collect(),
            deployed: (0..txs).map(|_| Mutex::new(Vec::new())).collect(),
            reads: (0..txs).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// The pre-block world.
    pub fn base(&self) -> &Arc<WorldState> {
        &self.base
    }

    /// Reads `key` as seen by transaction `reader`: the entry of the
    /// highest-index transaction `< reader`, falling back to the base world.
    pub fn read(&self, key: &AccessKey, reader: TxIndex) -> MvRead {
        let hit = self.data.with(key, |chain| {
            chain.and_then(|c| c.iter().rev().find(|e| e.tx < reader).copied())
        });
        match hit {
            Some(e) if e.estimate => MvRead::Estimate {
                writer: e.tx,
                fallback: e.value,
            },
            Some(e) => MvRead::Value {
                value: e.value,
                origin: ReadOrigin::Version {
                    tx: e.tx,
                    incarnation: e.incarnation,
                },
            },
            None => MvRead::Value {
                value: self.base.read_key(key),
                origin: ReadOrigin::Base,
            },
        }
    }

    /// Code of `addr` as seen by transaction `reader` (latest in-block
    /// deployment by a lower-index transaction, else base code).
    pub fn code_at(&self, addr: &Address, reader: TxIndex) -> Arc<Vec<u8>> {
        let hit = self.code.with(addr, |chain| {
            chain.and_then(|c| c.iter().rev().find(|(tx, _)| *tx < reader).cloned())
        });
        match hit {
            Some((_, code)) => code,
            None => self.base.code(addr),
        }
    }

    /// Records the outcome of incarnation `incarnation` of transaction `tx`:
    /// its reads (with origins), its write set, and any deployed code.
    /// Entries of the previous incarnation not re-written are removed, and
    /// re-written ones lose their ESTIMATE flag.
    ///
    /// Returns `true` iff the write set covers a location the previous
    /// incarnation did not (the scheduler must then revalidate every
    /// higher-index transaction, not just this one).
    pub fn record(
        &self,
        tx: TxIndex,
        incarnation: u32,
        reads: Vec<(AccessKey, ReadOrigin)>,
        writes: &WriteSet,
        deployed: impl Iterator<Item = (Address, Arc<Vec<u8>>)>,
    ) -> bool {
        *self.reads[tx as usize].lock() = reads;

        let mut prev = self.written[tx as usize].lock();
        let wrote_new = writes.keys().any(|k| !prev.contains(k));
        for (key, value) in writes {
            self.data.update(*key, |slot| {
                let chain = slot.get_or_insert_with(Vec::new);
                let pos = chain.partition_point(|e| e.tx < tx);
                let entry = Entry {
                    tx,
                    incarnation,
                    value: *value,
                    estimate: false,
                };
                if chain.get(pos).is_some_and(|e| e.tx == tx) {
                    chain[pos] = entry;
                } else {
                    chain.insert(pos, entry);
                }
            });
        }
        for key in prev.iter().filter(|k| !writes.contains_key(*k)) {
            self.data.update(*key, |slot| {
                if let Some(chain) = slot.as_mut() {
                    chain.retain(|e| e.tx != tx);
                }
            });
        }
        *prev = writes.keys().copied().collect();
        drop(prev);

        let mut prev_deployed = self.deployed[tx as usize].lock();
        let mut new_deployed = Vec::new();
        for (addr, bytecode) in deployed {
            new_deployed.push(addr);
            self.code.update(addr, |slot| {
                let chain = slot.get_or_insert_with(Vec::new);
                let pos = chain.partition_point(|(t, _)| *t < tx);
                if chain.get(pos).is_some_and(|(t, _)| *t == tx) {
                    chain[pos] = (tx, bytecode);
                } else {
                    chain.insert(pos, (tx, bytecode));
                }
            });
        }
        for addr in prev_deployed.iter().filter(|a| !new_deployed.contains(a)) {
            self.code.update(*addr, |slot| {
                if let Some(chain) = slot.as_mut() {
                    chain.retain(|(t, _)| *t != tx);
                }
            });
        }
        *prev_deployed = new_deployed;

        wrote_new
    }

    /// Flags every location the latest incarnation of `tx` wrote as an
    /// ESTIMATE (called after a validation abort, before the re-execution):
    /// readers that land on one wait for `tx` instead of consuming the stale
    /// value.
    pub fn convert_to_estimates(&self, tx: TxIndex) {
        for key in self.written[tx as usize].lock().iter() {
            self.data.update(*key, |slot| {
                if let Some(chain) = slot.as_mut() {
                    if let Some(e) = chain.iter_mut().find(|e| e.tx == tx) {
                        e.estimate = true;
                    }
                }
            });
        }
    }

    /// Re-resolves every read the latest incarnation of `tx` recorded and
    /// compares origins.
    pub fn validate_reads(&self, tx: TxIndex) -> ReadValidation {
        let reads = self.reads[tx as usize].lock();
        let mut saw_estimate = false;
        for (key, origin) in reads.iter() {
            match self.read(key, tx) {
                MvRead::Value { origin: cur, .. } => {
                    if cur != *origin {
                        return ReadValidation::Invalid;
                    }
                }
                MvRead::Estimate { .. } => saw_estimate = true,
            }
        }
        if saw_estimate {
            ReadValidation::SawEstimate
        } else {
            ReadValidation::Valid
        }
    }

    /// Materializes the world as the prefix `0..cut` of the preset order
    /// left it: base plus, per key, the highest-index entry below `cut`.
    ///
    /// Must only be called after the scheduler converged — no entry below
    /// `cut` may still be an ESTIMATE (debug-asserted).
    pub fn materialize(&self, cut: TxIndex) -> WorldState {
        let mut world = self.base.snapshot();
        let mut writes: WriteSet = Default::default();
        for (key, chain) in self.data.snapshot() {
            if let Some(e) = chain.iter().rev().find(|e| e.tx < cut) {
                debug_assert!(!e.estimate, "ESTIMATE below the seal cut");
                writes.insert(key, e.value);
            }
        }
        world.apply_writes(&writes);
        for (addr, chain) in self.code.snapshot() {
            if let Some((_, code)) = chain.iter().rev().find(|(t, _)| *t < cut) {
                world.set_code(addr, (**code).clone());
            }
        }
        world
    }

    /// Number of keys with at least one recorded write.
    pub fn written_key_count(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::H256;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn bal(i: u64) -> AccessKey {
        AccessKey::Balance(addr(i))
    }

    fn ws(pairs: &[(AccessKey, u64)]) -> WriteSet {
        pairs.iter().map(|(k, v)| (*k, U256::from(*v))).collect()
    }

    fn mem() -> MvMemory {
        let mut base = WorldState::new();
        base.set_balance(addr(1), U256::from(100u64));
        base.set_storage(addr(2), H256::from_low_u64(1), U256::from(7u64));
        MvMemory::new(Arc::new(base), 8, 4)
    }

    fn no_code() -> std::iter::Empty<(Address, Arc<Vec<u8>>)> {
        std::iter::empty()
    }

    #[test]
    fn reads_see_only_lower_indices() {
        let m = mem();
        m.record(3, 0, Vec::new(), &ws(&[(bal(1), 50)]), no_code());
        // Transaction 2 reads below the write; 4 reads above it.
        assert_eq!(
            m.read(&bal(1), 2),
            MvRead::Value {
                value: U256::from(100u64),
                origin: ReadOrigin::Base
            }
        );
        assert_eq!(
            m.read(&bal(1), 4),
            MvRead::Value {
                value: U256::from(50u64),
                origin: ReadOrigin::Version {
                    tx: 3,
                    incarnation: 0
                }
            }
        );
        // A transaction never reads its own entry.
        assert_eq!(
            m.read(&bal(1), 3),
            MvRead::Value {
                value: U256::from(100u64),
                origin: ReadOrigin::Base
            }
        );
    }

    #[test]
    fn estimates_redirect_readers_to_the_writer() {
        let m = mem();
        m.record(1, 0, Vec::new(), &ws(&[(bal(1), 60)]), no_code());
        m.convert_to_estimates(1);
        assert_eq!(
            m.read(&bal(1), 5),
            MvRead::Estimate {
                writer: 1,
                fallback: U256::from(60u64)
            }
        );
        // Re-recording (the re-execution) clears the flag.
        m.record(1, 1, Vec::new(), &ws(&[(bal(1), 61)]), no_code());
        assert_eq!(
            m.read(&bal(1), 5),
            MvRead::Value {
                value: U256::from(61u64),
                origin: ReadOrigin::Version {
                    tx: 1,
                    incarnation: 1
                }
            }
        );
    }

    #[test]
    fn reexecution_removes_unwritten_locations() {
        let m = mem();
        m.record(
            2,
            0,
            Vec::new(),
            &ws(&[(bal(1), 10), (bal(3), 20)]),
            no_code(),
        );
        // Incarnation 1 no longer writes bal(3).
        let wrote_new = m.record(2, 1, Vec::new(), &ws(&[(bal(1), 11)]), no_code());
        assert!(!wrote_new, "subset of previous write set");
        assert_eq!(
            m.read(&bal(3), 5),
            MvRead::Value {
                value: U256::ZERO,
                origin: ReadOrigin::Base
            }
        );
        // A genuinely new location reports wrote_new.
        assert!(m.record(
            2,
            2,
            Vec::new(),
            &ws(&[(bal(1), 12), (bal(4), 1)]),
            no_code()
        ));
    }

    #[test]
    fn validation_compares_origins_not_values() {
        let m = mem();
        m.record(1, 0, Vec::new(), &ws(&[(bal(1), 100)]), no_code());
        // Transaction 3 read bal(1) from the base (value 100).
        m.record(3, 0, vec![(bal(1), ReadOrigin::Base)], &ws(&[]), no_code());
        // Same value, different origin: must invalidate (ABA).
        assert_eq!(m.validate_reads(3), ReadValidation::Invalid);

        // Matching origin validates.
        m.record(
            4,
            0,
            vec![(
                bal(1),
                ReadOrigin::Version {
                    tx: 1,
                    incarnation: 0,
                },
            )],
            &ws(&[]),
            no_code(),
        );
        assert_eq!(m.validate_reads(4), ReadValidation::Valid);

        // An ESTIMATE defers the verdict instead of failing it.
        m.convert_to_estimates(1);
        assert_eq!(m.validate_reads(4), ReadValidation::SawEstimate);
    }

    #[test]
    fn materialize_takes_the_prefix() {
        let m = mem();
        m.record(0, 0, Vec::new(), &ws(&[(bal(1), 10)]), no_code());
        m.record(
            2,
            1,
            Vec::new(),
            &ws(&[(bal(1), 30), (bal(5), 5)]),
            no_code(),
        );
        let at1 = m.materialize(1);
        assert_eq!(at1.balance(&addr(1)), U256::from(10u64));
        assert_eq!(at1.balance(&addr(5)), U256::ZERO);
        let at3 = m.materialize(3);
        assert_eq!(at3.balance(&addr(1)), U256::from(30u64));
        assert_eq!(at3.balance(&addr(5)), U256::from(5u64));
        // Cut 0 is the base.
        assert_eq!(m.materialize(0).state_root(), m.base().state_root());
    }

    #[test]
    fn code_deployments_are_versioned_and_revertible() {
        let m = mem();
        let code = Arc::new(vec![0xAA]);
        m.record(
            2,
            0,
            Vec::new(),
            &ws(&[]),
            std::iter::once((addr(9), Arc::clone(&code))),
        );
        assert!(m.code_at(&addr(9), 2).is_empty());
        assert_eq!(*m.code_at(&addr(9), 3), vec![0xAA]);
        assert_eq!(*m.materialize(3).code(&addr(9)), vec![0xAA]);
        // The re-execution deploys nothing: the stale deployment vanishes.
        m.record(2, 1, Vec::new(), &ws(&[]), no_code());
        assert!(m.code_at(&addr(9), 3).is_empty());
    }

    #[test]
    fn concurrent_record_and_read_stay_consistent() {
        use std::thread;
        let m = Arc::new(mem());
        let writer = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for round in 0..200u64 {
                    m.record(
                        1,
                        round as u32,
                        Vec::new(),
                        &ws(&[(bal(1), round + 1)]),
                        no_code(),
                    );
                }
            })
        };
        for _ in 0..1000 {
            match m.read(&bal(1), 4) {
                MvRead::Value { value, origin } => {
                    if origin == ReadOrigin::Base {
                        assert_eq!(value, U256::from(100u64));
                    } else {
                        assert!(value >= U256::ONE && value <= U256::from(200u64));
                    }
                }
                MvRead::Estimate { .. } => panic!("no estimates in this test"),
            }
        }
        writer.join().unwrap();
        assert_eq!(
            m.read(&bal(1), 4),
            MvRead::Value {
                value: U256::from(200u64),
                origin: ReadOrigin::Version {
                    tx: 1,
                    incarnation: 199
                }
            }
        );
    }
}
