//! Multi-version state for the OCC-WSI proposer.
//!
//! Algorithm 1 executes every transaction against a *snapshot*
//! `State(version)`: the pre-block world overlaid with the writes of all
//! transactions committed at versions `1..=version`. [`MultiVersionState`]
//! keeps, per [`AccessKey`], the sorted version chain of committed values, so
//! any snapshot can be served without copying the world and concurrent
//! readers never block committers of unrelated keys.

use std::sync::Arc;

use bp_concurrent::{ShardedMap, VersionGate};
use bp_types::{AccessKey, Address, WriteSet, U256};

use crate::world::WorldState;

/// The pre-block world (version 0) plus per-key version chains for writes
/// committed during block formation.
pub struct MultiVersionState {
    base: Arc<WorldState>,
    // Version chains, ascending by version. Chains are short in practice (a
    // key is rewritten a handful of times per block), so a Vec beats a tree.
    versions: ShardedMap<AccessKey, Vec<(u64, U256)>>,
    // Code installed by in-block contract creations.
    code: ShardedMap<Address, Arc<Vec<u8>>>,
    // Two-phase commit: versions may be allocated (Phase A) before their
    // write sets are published (Phase B). Snapshot readers that land on a
    // pending version wait on this gate instead of taking any global lock.
    gate: Option<Arc<VersionGate>>,
}

impl MultiVersionState {
    /// Wraps `base` as version 0, sized for `threads` workers.
    pub fn new(base: Arc<WorldState>, threads: usize) -> Self {
        MultiVersionState {
            base,
            versions: ShardedMap::for_threads(threads),
            code: ShardedMap::for_threads(threads),
            gate: None,
        }
    }

    /// Like [`MultiVersionState::new`], but with a [`VersionGate`] tracking
    /// which versions are still pending publication (the two-phase proposer
    /// commit). Snapshots taken at a pending version block in
    /// [`MultiVersionState::wait_visible`] until the version opens.
    pub fn with_gate(base: Arc<WorldState>, threads: usize, gate: Arc<VersionGate>) -> Self {
        let mut mv = Self::new(base, threads);
        mv.gate = Some(gate);
        mv
    }

    /// Blocks until every version `≤ version` is fully published. A no-op
    /// without a gate (single-phase commit publishes before the version
    /// becomes discoverable).
    pub fn wait_visible(&self, version: u64) {
        if let Some(gate) = &self.gate {
            gate.wait_visible(version);
        }
    }

    /// The version-0 world.
    pub fn base(&self) -> &Arc<WorldState> {
        &self.base
    }

    /// Reads `key` as of snapshot `version`: the newest committed value with
    /// version ≤ `version`, falling back to the base world. Returns the value
    /// and the version it was committed at (0 for base reads).
    pub fn read_at(&self, key: &AccessKey, version: u64) -> (U256, u64) {
        let hit = self.versions.with(key, |chain| {
            chain.and_then(|c| c.iter().rev().find(|(v, _)| *v <= version).copied())
        });
        match hit {
            Some((v, value)) => (value, v),
            None => (self.base.read_key(key), 0),
        }
    }

    /// The latest committed value of `key` regardless of snapshot.
    pub fn read_latest(&self, key: &AccessKey) -> (U256, u64) {
        self.read_at(key, u64::MAX)
    }

    /// Publishes one committed write set at `version`.
    pub fn commit_writes(&self, writes: &WriteSet, version: u64) {
        for (key, value) in writes {
            self.versions.update(*key, |slot| {
                let chain = slot.get_or_insert_with(Vec::new);
                // Insert keeping ascending version order; commits arrive
                // nearly sorted so this is O(1) amortized.
                let pos = chain.partition_point(|(v, _)| *v < version);
                chain.insert(pos, (version, *value));
            });
        }
    }

    /// Code of `addr` as visible in this block (base code unless a creation
    /// installed new code).
    pub fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.code.get(addr).unwrap_or_else(|| self.base.code(addr))
    }

    /// Installs code created during the block.
    pub fn install_code(&self, addr: Address, code: Arc<Vec<u8>>) {
        self.code.insert(addr, code);
    }

    /// Materializes the world as of `version` (base plus the newest write ≤
    /// `version` of every key). Used when sealing the proposed block.
    ///
    /// Starts from a copy-on-write snapshot of the base world and applies all
    /// versioned writes as one batched [`WriteSet`], so the cost is
    /// O(written keys), not O(world size).
    pub fn materialize(&self, version: u64) -> WorldState {
        let mut world = self.base.snapshot();
        let mut writes: WriteSet = Default::default();
        for (key, chain) in self.versions.snapshot() {
            if let Some((_, value)) = chain.iter().rev().find(|(v, _)| *v <= version) {
                writes.insert(key, *value);
            }
        }
        world.apply_writes(&writes);
        for (addr, code) in self.code.snapshot() {
            world.set_code(addr, (*code).clone());
        }
        world
    }

    /// Number of keys with at least one committed in-block write.
    pub fn written_key_count(&self) -> usize {
        self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::H256;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn bal(i: u64) -> AccessKey {
        AccessKey::Balance(addr(i))
    }

    fn mv_with_base() -> MultiVersionState {
        let mut base = WorldState::new();
        base.set_balance(addr(1), U256::from(100u64));
        base.set_storage(addr(2), H256::from_low_u64(1), U256::from(7u64));
        MultiVersionState::new(Arc::new(base), 4)
    }

    #[test]
    fn base_reads_report_version_zero() {
        let mv = mv_with_base();
        assert_eq!(mv.read_at(&bal(1), 0), (U256::from(100u64), 0));
        assert_eq!(mv.read_at(&bal(1), 99), (U256::from(100u64), 0));
        assert_eq!(mv.read_at(&bal(9), 5), (U256::ZERO, 0));
    }

    #[test]
    fn snapshot_sees_only_older_versions() {
        let mv = mv_with_base();
        let mut w1: WriteSet = Default::default();
        w1.insert(bal(1), U256::from(50u64));
        mv.commit_writes(&w1, 1);
        let mut w3: WriteSet = Default::default();
        w3.insert(bal(1), U256::from(30u64));
        mv.commit_writes(&w3, 3);

        assert_eq!(mv.read_at(&bal(1), 0), (U256::from(100u64), 0));
        assert_eq!(mv.read_at(&bal(1), 1), (U256::from(50u64), 1));
        assert_eq!(mv.read_at(&bal(1), 2), (U256::from(50u64), 1));
        assert_eq!(mv.read_at(&bal(1), 3), (U256::from(30u64), 3));
        assert_eq!(mv.read_latest(&bal(1)), (U256::from(30u64), 3));
    }

    #[test]
    fn out_of_order_commits_keep_chain_sorted() {
        let mv = mv_with_base();
        for v in [5u64, 2, 9, 1] {
            let mut w: WriteSet = Default::default();
            w.insert(bal(1), U256::from(v * 10));
            mv.commit_writes(&w, v);
        }
        assert_eq!(mv.read_at(&bal(1), 1).0, U256::from(10u64));
        assert_eq!(mv.read_at(&bal(1), 4).0, U256::from(20u64));
        assert_eq!(mv.read_at(&bal(1), 7).0, U256::from(50u64));
        assert_eq!(mv.read_at(&bal(1), 100).0, U256::from(90u64));
    }

    #[test]
    fn materialize_applies_latest_writes() {
        let mv = mv_with_base();
        let mut w: WriteSet = Default::default();
        w.insert(bal(1), U256::from(42u64));
        w.insert(
            AccessKey::Storage(addr(2), H256::from_low_u64(1)),
            U256::from(8u64),
        );
        mv.commit_writes(&w, 1);
        let mut w2: WriteSet = Default::default();
        w2.insert(bal(1), U256::from(43u64));
        mv.commit_writes(&w2, 2);

        let at1 = mv.materialize(1);
        assert_eq!(at1.balance(&addr(1)), U256::from(42u64));
        assert_eq!(
            at1.storage(&addr(2), &H256::from_low_u64(1)),
            U256::from(8u64)
        );

        let at2 = mv.materialize(2);
        assert_eq!(at2.balance(&addr(1)), U256::from(43u64));

        // Version 0 materializes back to the base.
        assert_eq!(mv.materialize(0).state_root(), mv.base().state_root());
    }

    #[test]
    fn code_overlay() {
        let mv = mv_with_base();
        assert!(mv.code(&addr(5)).is_empty());
        mv.install_code(addr(5), Arc::new(vec![1, 2, 3]));
        assert_eq!(*mv.code(&addr(5)), vec![1, 2, 3]);
        let world = mv.materialize(0);
        assert_eq!(*world.code(&addr(5)), vec![1, 2, 3]);
    }

    #[test]
    fn gated_snapshot_waits_for_pending_publication() {
        use bp_concurrent::VersionGate;
        use std::thread;

        let gate = Arc::new(VersionGate::new());
        let mut base = WorldState::new();
        base.set_balance(addr(1), U256::from(100u64));
        let mv = Arc::new(MultiVersionState::with_gate(
            Arc::new(base),
            2,
            Arc::clone(&gate),
        ));

        // Version 1 is allocated (registered) but not yet published.
        gate.register(1);
        let reader = {
            let mv = Arc::clone(&mv);
            thread::spawn(move || {
                mv.wait_visible(1);
                mv.read_at(&bal(1), 1)
            })
        };
        // Publish, then open: the reader must observe the committed value.
        let mut w: WriteSet = Default::default();
        w.insert(bal(1), U256::from(55u64));
        mv.commit_writes(&w, 1);
        gate.open(1);
        assert_eq!(reader.join().unwrap(), (U256::from(55u64), 1));
        // Ungated reads below the pending window never block.
        mv.wait_visible(0);
    }

    #[test]
    fn concurrent_commit_and_read() {
        use std::thread;
        let mv = Arc::new(mv_with_base());
        let writer = {
            let mv = Arc::clone(&mv);
            thread::spawn(move || {
                for v in 1..=100u64 {
                    let mut w: WriteSet = Default::default();
                    w.insert(bal(1), U256::from(v));
                    mv.commit_writes(&w, v);
                }
            })
        };
        // Concurrent snapshot reads must always see a consistent value: the
        // balance at snapshot v is either the base or some committed version
        // ≤ v.
        for _ in 0..1000 {
            let (value, version) = mv.read_at(&bal(1), 50);
            assert!(version <= 50);
            if version == 0 {
                assert_eq!(value, U256::from(100u64));
            } else {
                assert_eq!(value, U256::from(version));
            }
        }
        writer.join().unwrap();
        assert_eq!(mv.read_at(&bal(1), 50), (U256::from(50u64), 50));
    }
}
