//! Nibble paths and hex-prefix encoding for the Merkle Patricia Trie.
//!
//! Trie keys are sequences of 4-bit nibbles. Leaf and extension nodes store a
//! nibble path compacted with Ethereum's *hex-prefix* (HP) encoding, whose
//! first nibble carries two flags: parity of the path length, and whether the
//! node is a leaf (terminator) or an extension.

/// A path of nibbles (each element is 0..=15).
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct Nibbles(pub Vec<u8>);

impl Nibbles {
    /// Expands bytes into nibbles, high nibble first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut out = Vec::with_capacity(bytes.len() * 2);
        for &b in bytes {
            out.push(b >> 4);
            out.push(b & 0x0F);
        }
        Nibbles(out)
    }

    /// Path length in nibbles.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Nibble at `i`.
    pub fn at(&self, i: usize) -> u8 {
        self.0[i]
    }

    /// The sub-path starting at `from`.
    pub fn slice_from(&self, from: usize) -> Nibbles {
        Nibbles(self.0[from..].to_vec())
    }

    /// Length of the common prefix with `other`.
    pub fn common_prefix_len(&self, other: &Nibbles) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Concatenates `self`, one nibble, and `tail` (used when collapsing
    /// nodes during deletion).
    pub fn join(&self, mid: u8, tail: &Nibbles) -> Nibbles {
        let mut out = Vec::with_capacity(self.0.len() + 1 + tail.0.len());
        out.extend_from_slice(&self.0);
        out.push(mid);
        out.extend_from_slice(&tail.0);
        Nibbles(out)
    }

    /// Concatenates two paths.
    pub fn concat(&self, tail: &Nibbles) -> Nibbles {
        let mut out = Vec::with_capacity(self.0.len() + tail.0.len());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&tail.0);
        Nibbles(out)
    }

    /// Hex-prefix encodes the path. `leaf` sets the terminator flag.
    pub fn hex_prefix(&self, leaf: bool) -> Vec<u8> {
        let flag: u8 = if leaf { 2 } else { 0 };
        let odd = self.0.len() % 2 == 1;
        let mut out = Vec::with_capacity(self.0.len() / 2 + 1);
        if odd {
            out.push((flag + 1) << 4 | self.0[0]);
            for pair in self.0[1..].chunks(2) {
                out.push(pair[0] << 4 | pair[1]);
            }
        } else {
            out.push(flag << 4);
            for pair in self.0.chunks(2) {
                out.push(pair[0] << 4 | pair[1]);
            }
        }
        out
    }

    /// Decodes a hex-prefix encoding, returning the path and the leaf flag.
    pub fn from_hex_prefix(data: &[u8]) -> Option<(Nibbles, bool)> {
        let (&first, rest) = data.split_first()?;
        let flag = first >> 4;
        if flag > 3 {
            return None;
        }
        let leaf = flag >= 2;
        let odd = flag % 2 == 1;
        let mut out = Vec::with_capacity(rest.len() * 2 + 1);
        if odd {
            out.push(first & 0x0F);
        } else if first & 0x0F != 0 {
            return None; // padding nibble must be zero
        }
        for &b in rest {
            out.push(b >> 4);
            out.push(b & 0x0F);
        }
        Some((Nibbles(out), leaf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_expands_high_first() {
        let n = Nibbles::from_bytes(&[0xAB, 0x01]);
        assert_eq!(n.0, vec![0xA, 0xB, 0x0, 0x1]);
        assert_eq!(n.len(), 4);
        assert_eq!(n.at(0), 0xA);
    }

    #[test]
    fn hex_prefix_spec_vectors() {
        // From the yellow paper appendix C examples.
        // [1, 2, 3, 4, 5] extension (odd) -> 0x11 0x23 0x45
        assert_eq!(
            Nibbles(vec![1, 2, 3, 4, 5]).hex_prefix(false),
            vec![0x11, 0x23, 0x45]
        );
        // [0, 1, 2, 3, 4, 5] extension (even) -> 0x00 0x01 0x23 0x45
        assert_eq!(
            Nibbles(vec![0, 1, 2, 3, 4, 5]).hex_prefix(false),
            vec![0x00, 0x01, 0x23, 0x45]
        );
        // [0, 15, 1, 12, 11, 8] leaf (even) -> 0x20 0x0f 0x1c 0xb8
        assert_eq!(
            Nibbles(vec![0, 15, 1, 12, 11, 8]).hex_prefix(true),
            vec![0x20, 0x0f, 0x1c, 0xb8]
        );
        // [15, 1, 12, 11, 8] leaf (odd) -> 0x3f 0x1c 0xb8
        assert_eq!(
            Nibbles(vec![15, 1, 12, 11, 8]).hex_prefix(true),
            vec![0x3f, 0x1c, 0xb8]
        );
    }

    #[test]
    fn hex_prefix_roundtrip() {
        for len in 0..8 {
            for leaf in [false, true] {
                let n = Nibbles((0..len).map(|i| (i * 3 % 16) as u8).collect());
                let enc = n.hex_prefix(leaf);
                let (dec, got_leaf) = Nibbles::from_hex_prefix(&enc).unwrap();
                assert_eq!(dec, n);
                assert_eq!(got_leaf, leaf);
            }
        }
    }

    #[test]
    fn bad_hex_prefix_rejected() {
        assert!(Nibbles::from_hex_prefix(&[]).is_none());
        // Even-length flag with nonzero padding nibble.
        assert!(Nibbles::from_hex_prefix(&[0x05]).is_none());
        // Flag nibble out of range.
        assert!(Nibbles::from_hex_prefix(&[0x40]).is_none());
    }

    #[test]
    fn prefix_and_slicing() {
        let a = Nibbles(vec![1, 2, 3, 4]);
        let b = Nibbles(vec![1, 2, 9]);
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.slice_from(2), Nibbles(vec![3, 4]));
        assert_eq!(b.join(7, &Nibbles(vec![5])), Nibbles(vec![1, 2, 9, 7, 5]));
        assert_eq!(a.concat(&b), Nibbles(vec![1, 2, 3, 4, 1, 2, 9]));
        assert!(Nibbles::default().is_empty());
    }
}
