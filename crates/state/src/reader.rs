//! Base-state read abstraction: the seam between [`crate::WorldState`] and a
//! layered flat-state backend (`bp-snap`).
//!
//! A [`StateReader`] answers point lookups against some *base* state — the
//! state as of a particular committed root — without requiring that state to
//! be resident in memory. `WorldState` can be stacked on top of one
//! ([`crate::WorldState::layered`] / [`crate::WorldState::rebase`]): reads
//! miss through the in-memory overlay into the base, writes materialize the
//! touched account in the overlay, and commitment merges overlay over base.
//!
//! A [`StateDelta`] is the inverse direction: the net effect of a block on
//! the base — exactly what a snapshot diff layer stores and what flattening
//! folds into the disk-backed flat base. `None` values mean *deleted* (an
//! account emptied per EIP-161, a storage slot zeroed).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bp_types::{Address, H256, U256};

/// One account's base-state body (storage is looked up separately, slot by
/// slot, so a huge contract does not have to be materialized to read one
/// word of it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaseAccount {
    /// Transaction/creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Contract code (empty for EOAs). `Arc` so layers share one blob.
    pub code: Arc<Vec<u8>>,
}

impl BaseAccount {
    /// True iff the body alone is empty (EIP-161, ignoring storage).
    pub fn is_empty(&self) -> bool {
        self.nonce == 0 && self.balance.is_zero() && self.code.is_empty()
    }
}

/// Point-lookup access to a base state. Implementations must answer as of
/// one fixed root: a `WorldState` stacked on top owns all mutability.
pub trait StateReader: Send + Sync + fmt::Debug {
    /// The account body at `addr`, or `None` if the account does not exist
    /// in the base.
    fn base_account(&self, addr: &Address) -> Option<BaseAccount>;

    /// Storage slot `slot` of `addr`: `None` if unset in the base. (Callers
    /// treat `None` as zero; the distinction only matters for deltas.)
    fn base_storage(&self, addr: &Address, slot: &H256) -> Option<U256>;

    /// Every live (non-zero) storage entry of `addr` in the base. Used when
    /// an account's storage trie must be rebuilt from scratch.
    fn base_storage_entries(&self, addr: &Address) -> Vec<(H256, U256)>;

    /// Every address live in the base — accounts with a body *or* storage.
    /// Only used by from-scratch oracles ([`crate::WorldState::rebuild_root`])
    /// and first-commit fallbacks; point reads never enumerate.
    fn base_accounts(&self) -> Vec<Address>;
}

/// The net effect of one block (or a fold of several) on a base state.
///
/// `None` deletes: an account entry of `None` removes the account body, a
/// storage entry of `None` clears the slot. Account bodies and storage are
/// tracked independently — an account can have a dead body but live storage
/// and vice versa, mirroring how the flat base stores them as separate
/// records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateDelta {
    /// Account body upserts/deletes.
    pub accounts: HashMap<Address, Option<BaseAccount>>,
    /// Storage upserts/deletes, per account.
    pub storage: HashMap<Address, HashMap<H256, Option<U256>>>,
}

impl StateDelta {
    /// True iff the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty() && self.storage.values().all(|s| s.is_empty())
    }

    /// Total number of entries (account bodies + storage slots).
    pub fn len(&self) -> usize {
        self.accounts.len() + self.storage.values().map(|s| s.len()).sum::<usize>()
    }

    /// Folds `later` over `self`: where both touch a key, `later` wins.
    /// Folding block deltas oldest-to-newest onto a base reproduces the
    /// newest state.
    pub fn fold(&mut self, later: &StateDelta) {
        for (addr, acct) in &later.accounts {
            self.accounts.insert(*addr, acct.clone());
        }
        for (addr, slots) in &later.storage {
            let mine = self.storage.entry(*addr).or_default();
            for (slot, value) in slots {
                mine.insert(*slot, *value);
            }
        }
    }
}

/// An in-memory [`StateReader`]: a pair of flat maps. The reference
/// implementation used by tests and oracles; `bp-snap`'s disk-backed base
/// must be observationally identical to a `MapReader` fed the same deltas.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MapReader {
    /// Account bodies by address.
    pub accounts: HashMap<Address, BaseAccount>,
    /// Live (non-zero) storage by address and slot.
    pub storage: HashMap<Address, HashMap<H256, U256>>,
}

impl MapReader {
    /// An empty base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a delta in place (`None` entries delete).
    pub fn apply(&mut self, delta: &StateDelta) {
        for (addr, acct) in &delta.accounts {
            match acct {
                Some(a) => {
                    self.accounts.insert(*addr, a.clone());
                }
                None => {
                    self.accounts.remove(addr);
                }
            }
        }
        for (addr, slots) in &delta.storage {
            let mine = self.storage.entry(*addr).or_default();
            for (slot, value) in slots {
                match value {
                    Some(v) if !v.is_zero() => {
                        mine.insert(*slot, *v);
                    }
                    _ => {
                        mine.remove(slot);
                    }
                }
            }
            if mine.is_empty() {
                self.storage.remove(addr);
            }
        }
    }
}

impl StateReader for MapReader {
    fn base_account(&self, addr: &Address) -> Option<BaseAccount> {
        self.accounts.get(addr).cloned()
    }

    fn base_storage(&self, addr: &Address, slot: &H256) -> Option<U256> {
        self.storage.get(addr).and_then(|s| s.get(slot)).copied()
    }

    fn base_storage_entries(&self, addr: &Address) -> Vec<(H256, U256)> {
        self.storage
            .get(addr)
            .map(|s| s.iter().map(|(k, v)| (*k, *v)).collect())
            .unwrap_or_default()
    }

    fn base_accounts(&self) -> Vec<Address> {
        let mut addrs: Vec<Address> = self.accounts.keys().copied().collect();
        for addr in self.storage.keys() {
            if !self.accounts.contains_key(addr) {
                addrs.push(*addr);
            }
        }
        addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn fold_later_wins() {
        let mut d1 = StateDelta::default();
        d1.accounts.insert(
            addr(1),
            Some(BaseAccount {
                balance: U256::from(10u64),
                ..Default::default()
            }),
        );
        d1.storage
            .entry(addr(1))
            .or_default()
            .insert(H256::from_low_u64(1), Some(U256::ONE));
        let mut d2 = StateDelta::default();
        d2.accounts.insert(addr(1), None);
        d2.storage
            .entry(addr(1))
            .or_default()
            .insert(H256::from_low_u64(1), None);
        d2.storage
            .entry(addr(2))
            .or_default()
            .insert(H256::from_low_u64(2), Some(U256::from(5u64)));
        d1.fold(&d2);
        assert_eq!(d1.accounts.get(&addr(1)), Some(&None));
        assert_eq!(d1.storage[&addr(1)][&H256::from_low_u64(1)], None);
        assert_eq!(
            d1.storage[&addr(2)][&H256::from_low_u64(2)],
            Some(U256::from(5u64))
        );
    }

    #[test]
    fn map_reader_apply_and_read() {
        let mut base = MapReader::new();
        let mut delta = StateDelta::default();
        delta.accounts.insert(
            addr(1),
            Some(BaseAccount {
                nonce: 2,
                balance: U256::from(100u64),
                code: Arc::new(vec![0x60]),
            }),
        );
        delta
            .storage
            .entry(addr(1))
            .or_default()
            .insert(H256::from_low_u64(7), Some(U256::from(9u64)));
        base.apply(&delta);
        assert_eq!(base.base_account(&addr(1)).unwrap().nonce, 2);
        assert_eq!(
            base.base_storage(&addr(1), &H256::from_low_u64(7)),
            Some(U256::from(9u64))
        );
        assert_eq!(base.base_accounts(), vec![addr(1)]);

        // Deletions drop the records and empty storage maps entirely.
        let mut undo = StateDelta::default();
        undo.accounts.insert(addr(1), None);
        undo.storage
            .entry(addr(1))
            .or_default()
            .insert(H256::from_low_u64(7), None);
        base.apply(&undo);
        assert_eq!(base.base_account(&addr(1)), None);
        assert_eq!(base.base_storage(&addr(1), &H256::from_low_u64(7)), None);
        assert!(base.base_accounts().is_empty());
        assert!(base.storage.is_empty());
    }

    #[test]
    fn storage_only_address_is_enumerated() {
        let mut base = MapReader::new();
        let mut delta = StateDelta::default();
        delta
            .storage
            .entry(addr(3))
            .or_default()
            .insert(H256::from_low_u64(1), Some(U256::ONE));
        base.apply(&delta);
        assert_eq!(base.base_account(&addr(3)), None);
        assert_eq!(base.base_accounts(), vec![addr(3)]);
    }
}
