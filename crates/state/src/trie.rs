//! Merkle Patricia Trie.
//!
//! A faithful in-memory implementation of Ethereum's authenticated radix
//! trie: leaf / extension / branch nodes, hex-prefix path compaction, RLP
//! node encoding, and the <32-byte node inlining rule. The root hash of the
//! account trie is the blockchain's *state root* — the value BlockPilot
//! validators compare against the proposed block header (§5.2: "two world
//! states are considered identical only if their MPT roots are the same").
//!
//! Nodes are **structurally shared**: children are held behind [`Arc`], so
//! `Trie::clone` is O(1) and an insert/remove path-copies only the nodes on
//! the touched path while every untouched subtree stays shared with prior
//! clones. Each shared node memoizes its RLP encoding and keccak hash, so
//! recomputing the root after k mutations re-hashes O(k · depth) nodes, not
//! the whole trie. This is what makes the world state's incremental
//! commitment O(dirty keys) per block instead of O(total state).
//!
//! The trie also produces Merkle proofs ([`Trie::prove`] /
//! [`verify_proof`]), used in tests to cross-check the commitment logic.
//!
//! For persistence the trie can be decomposed into its *hashed nodes*
//! ([`Trie::commit_nodes`]) — the `(keccak(encoding), encoding)` pairs a node
//! database stores — and reconstructed from a root hash by resolving child
//! references through a [`NodeResolver`] ([`Trie::from_root`]). Nodes whose
//! encoding is shorter than 32 bytes are inlined in their parent (the MPT
//! inlining rule) and never hit the database.

use std::sync::{Arc, OnceLock};

use bp_crypto::keccak256;
use bp_crypto::rlp::{self, Item, RlpStream};
use bp_types::H256;

use crate::nibbles::Nibbles;

/// Root hash of the empty trie: `keccak256(rlp(""))`.
pub fn empty_root() -> H256 {
    keccak256(&[0x80])
}

#[derive(Clone, Debug, PartialEq)]
enum Node {
    Empty,
    Leaf {
        path: Nibbles,
        value: Vec<u8>,
    },
    Extension {
        path: Nibbles,
        child: NodeRef,
    },
    Branch {
        children: Box<[NodeRef; 16]>,
        value: Option<Vec<u8>>,
    },
}

impl Node {
    fn empty_children() -> Box<[NodeRef; 16]> {
        Box::new(std::array::from_fn(|_| NodeRef::empty()))
    }
}

/// Memoized commitment of one node: its RLP encoding (with children already
/// reduced to hash references or inlined bytes) and, for encodings of 32
/// bytes or more, the keccak hash its parent refers to it by.
#[derive(Clone, Debug)]
struct EncCache {
    encoding: Arc<Vec<u8>>,
    /// `Some` iff `encoding.len() >= 32` (the node is hashed, not inlined).
    hash: Option<H256>,
}

/// A shared, immutable handle to a node. Cloning bumps a refcount; mutation
/// goes through [`NodeRef::take`], which copies the node only when it is
/// shared (path copying) and always discards the stale encoding cache.
#[derive(Clone, Debug)]
struct NodeRef(Arc<NodeInner>);

#[derive(Debug)]
struct NodeInner {
    node: Node,
    enc: OnceLock<EncCache>,
}

impl PartialEq for NodeRef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.node() == other.node()
    }
}

impl NodeRef {
    fn new(node: Node) -> Self {
        NodeRef(Arc::new(NodeInner {
            node,
            enc: OnceLock::new(),
        }))
    }

    /// The shared empty node (one allocation program-wide).
    fn empty() -> Self {
        static EMPTY: OnceLock<NodeRef> = OnceLock::new();
        EMPTY.get_or_init(|| NodeRef::new(Node::Empty)).clone()
    }

    fn node(&self) -> &Node {
        &self.0.node
    }

    fn is_empty_node(&self) -> bool {
        matches!(self.0.node, Node::Empty)
    }

    /// Takes the node out for mutation: moves when this is the only
    /// reference, shallow-copies (children stay shared) otherwise. Either
    /// way the encoding cache is dropped — the caller is about to change
    /// the node, so the memoized commitment would be stale.
    fn take(self) -> Node {
        match Arc::try_unwrap(self.0) {
            Ok(inner) => inner.node,
            Err(shared) => shared.node.clone(),
        }
    }

    /// The memoized encoding + hash, computed on first use.
    fn enc(&self) -> &EncCache {
        self.0.enc.get_or_init(|| {
            let encoding = encode_node(&self.0.node);
            let hash = if encoding.len() >= 32 {
                Some(keccak256(&encoding))
            } else {
                None
            };
            EncCache {
                encoding: Arc::new(encoding),
                hash,
            }
        })
    }
}

/// An in-memory Merkle Patricia Trie over byte keys and byte values.
///
/// Cloning is O(1): both tries share all nodes until one of them mutates
/// (copy-on-write along the mutated path only).
#[derive(Clone, Debug, PartialEq)]
pub struct Trie {
    root: NodeRef,
}

impl Default for Trie {
    fn default() -> Self {
        Self::new()
    }
}

impl Trie {
    /// An empty trie.
    pub fn new() -> Self {
        Trie {
            root: NodeRef::empty(),
        }
    }

    /// Inserts `value` at `key`. Empty values are equivalent to deletion, as
    /// in Ethereum.
    pub fn insert(&mut self, key: &[u8], value: Vec<u8>) {
        if value.is_empty() {
            self.remove(key);
            return;
        }
        let path = Nibbles::from_bytes(key);
        let root = std::mem::replace(&mut self.root, NodeRef::empty()).take();
        self.root = NodeRef::new(insert_at(root, path, value));
    }

    /// Returns the value at `key`, if present.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let path = Nibbles::from_bytes(key);
        get_at(self.root.node(), &path, 0)
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        let path = Nibbles::from_bytes(key);
        let root = std::mem::replace(&mut self.root, NodeRef::empty()).take();
        let (new_root, removed) = remove_at(root, &path, 0);
        self.root = NodeRef::new(new_root);
        removed
    }

    /// True iff the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_empty_node()
    }

    /// The Merkle root of the current contents. Memoized: repeated calls
    /// without intervening mutation are O(1), and after k mutations only the
    /// touched paths are re-encoded and re-hashed.
    pub fn root_hash(&self) -> H256 {
        if self.root.is_empty_node() {
            return empty_root();
        }
        let enc = self.root.enc();
        enc.hash.unwrap_or_else(|| keccak256(&enc.encoding))
    }

    /// Collects all (key, value) pairs in lexicographic key order. Keys are
    /// returned as nibble paths packed back into bytes; callers that inserted
    /// even-length byte keys get those bytes back exactly.
    pub fn iter(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        walk(self.root.node(), &mut Vec::new(), &mut out);
        out
    }

    /// Merkle proof for `key`: the RLP encodings of the nodes on the lookup
    /// path, root first. Verifiable with [`verify_proof`].
    pub fn prove(&self, key: &[u8]) -> Vec<Vec<u8>> {
        let path = Nibbles::from_bytes(key);
        let mut proof = Vec::new();
        prove_at(&self.root, &path, 0, &mut proof);
        proof
    }

    /// Decomposes the trie into its root hash and every *hashed* node —
    /// `(keccak(encoding), encoding)` for the root and for each node whose
    /// encoding is at least 32 bytes. Shorter nodes are inlined into their
    /// parent's encoding and carry no identity of their own.
    ///
    /// A node referenced from several places (identical subtrees) is emitted
    /// once **per reference**, so a reference-counting store that increments
    /// on commit and decrements along a traversal stays balanced.
    ///
    /// Encodings and hashes come from the per-node memo, so repeated commits
    /// of a mostly-unchanged trie pay hashing only for the changed paths.
    pub fn commit_nodes(&self) -> (H256, Vec<(H256, Vec<u8>)>) {
        if self.root.is_empty_node() {
            return (empty_root(), Vec::new());
        }
        let mut out = Vec::new();
        collect_hashed_children(&self.root, &mut out);
        let enc = self.root.enc();
        let root = enc.hash.unwrap_or_else(|| keccak256(&enc.encoding));
        out.push((root, (*enc.encoding).clone()));
        (root, out)
    }

    /// Applies a batch of inserts (`Some(value)`) and removals (`None`) and
    /// hashes the touched subtrees on up to `threads` scoped workers.
    ///
    /// The trie's radix structure makes the sharding exact: updates are
    /// partitioned by their first nibble, and when the root is a branch each
    /// of its 16 subtrees absorbs its shard independently — no two shards
    /// touch the same node, so each worker path-copies and re-encodes its
    /// subtree in isolation and the single-threaded merge step only has to
    /// re-encode the root branch from 16 memoized child commitments.
    ///
    /// The result is **identical** to applying the updates one by one:
    /// MPT structure is a pure function of the key set, so the root hash,
    /// the memoized node set ([`Trie::commit_nodes`]) and every future
    /// incremental commit are byte-for-byte the same as the serial path.
    /// Keys must be distinct; update order within the batch is immaterial.
    ///
    /// With `threads < 2`, a small batch, or a non-branch root that a seed
    /// pass cannot split (keys sharing a first nibble), this degrades to the
    /// serial loop.
    pub fn apply_batch(&mut self, mut updates: Vec<(Vec<u8>, Option<Vec<u8>>)>, threads: usize) {
        /// Below this many updates the fan-out overhead outweighs the
        /// subtree hashing it would parallelize.
        const PARALLEL_BATCH_THRESHOLD: usize = 33;
        if threads < 2 || updates.len() < PARALLEL_BATCH_THRESHOLD {
            self.apply_serial(updates);
            return;
        }
        if !matches!(self.root.node(), Node::Branch { .. }) {
            // Bootstrap: a fresh (or single-path) trie has no branch to
            // shard on. Seed it with a prefix of the batch — with hashed
            // keys a handful of inserts split the root — then shard the
            // rest. Removals can't create a branch, so seed with inserts.
            let seed = updates.len().min(32);
            let rest = updates.split_off(seed);
            self.apply_serial(updates);
            updates = rest;
            if updates.is_empty() || !matches!(self.root.node(), Node::Branch { .. }) {
                self.apply_serial(updates);
                return;
            }
        }
        let Node::Branch {
            mut children,
            mut value,
        } = std::mem::replace(&mut self.root, NodeRef::empty()).take()
        else {
            unreachable!("checked branch root above");
        };
        let mut shards: [Vec<(Nibbles, Option<Vec<u8>>)>; 16] = std::array::from_fn(|_| Vec::new());
        for (key, update) in updates {
            let path = Nibbles::from_bytes(&key);
            if path.is_empty() {
                // A root-valued key lives on the branch itself, not in any
                // subtree (unreachable for hashed keys, handled for parity
                // with the serial path).
                value = update.filter(|v| !v.is_empty());
            } else {
                shards[path.at(0) as usize].push((path, update));
            }
        }
        // Round-robin the 16 subtrees over the workers; each worker applies
        // its shards and forces the subtree commitment (`enc`) so the
        // expensive hashing happens inside the parallel region.
        let workers = threads.min(16);
        type SubtreeJob = (usize, NodeRef, Vec<(Nibbles, Option<Vec<u8>>)>);
        let mut jobs: Vec<Vec<SubtreeJob>> = (0..workers).map(|_| Vec::new()).collect();
        let mut next = 0;
        for (idx, shard) in shards.into_iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let child = std::mem::replace(&mut children[idx], NodeRef::empty());
            jobs[next % workers].push((idx, child, shard));
            next += 1;
        }
        let done: Vec<Vec<(usize, NodeRef)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .filter(|job| !job.is_empty())
                .map(|job| {
                    scope.spawn(move || {
                        job.into_iter()
                            .map(|(idx, child, shard)| {
                                let mut node = child.take();
                                for (path, update) in shard {
                                    node = match update {
                                        // Empty values delete, as in
                                        // `Trie::insert`.
                                        Some(v) if !v.is_empty() => {
                                            insert_at(node, path.slice_from(1), v)
                                        }
                                        _ => remove_at(node, &path, 1).0,
                                    };
                                }
                                let subtree = NodeRef::new(node);
                                if !subtree.is_empty_node() {
                                    subtree.enc();
                                }
                                (idx, subtree)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trie commit worker panicked"))
                .collect()
        });
        for (idx, subtree) in done.into_iter().flatten() {
            children[idx] = subtree;
        }
        self.root = NodeRef::new(normalize_branch(children, value));
    }

    /// The serial equivalent of [`Trie::apply_batch`].
    fn apply_serial(&mut self, updates: Vec<(Vec<u8>, Option<Vec<u8>>)>) {
        for (key, update) in updates {
            match update {
                Some(value) => self.insert(&key, value),
                None => {
                    self.remove(&key);
                }
            }
        }
    }

    /// Reconstructs a trie from its root hash, resolving hashed children
    /// through `resolver`. The inverse of [`Trie::commit_nodes`]: a round
    /// trip reproduces the identical contents and root hash.
    pub fn from_root(root: H256, resolver: &dyn NodeResolver) -> Result<Trie, TrieLoadError> {
        if root == empty_root() {
            return Ok(Trie::new());
        }
        let bytes = resolver
            .resolve_node(&root)
            .ok_or(TrieLoadError::MissingNode(root))?;
        if keccak256(&bytes) != root {
            return Err(TrieLoadError::HashMismatch(root));
        }
        let item = rlp::decode(&bytes).map_err(|_| TrieLoadError::BadNode(root))?;
        let node = node_from_item(&item, resolver)?;
        Ok(Trie {
            root: NodeRef::new(node),
        })
    }
}

// ---------------------------------------------------------------------------
// Persistence: node decomposition and resolver-based loading
// ---------------------------------------------------------------------------

/// Resolves trie nodes by hash — the bridge between in-memory tries and a
/// persistent node database.
pub trait NodeResolver {
    /// The encoding of the node hashing to `hash`, if stored.
    fn resolve_node(&self, hash: &H256) -> Option<Vec<u8>>;
}

impl NodeResolver for std::collections::HashMap<H256, Vec<u8>> {
    fn resolve_node(&self, hash: &H256) -> Option<Vec<u8>> {
        self.get(hash).cloned()
    }
}

/// Failures reconstructing a trie from a [`NodeResolver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrieLoadError {
    /// A referenced node is absent from the resolver.
    MissingNode(H256),
    /// A stored node failed to decode as a trie node.
    BadNode(H256),
    /// A stored node's bytes do not hash to the requested hash.
    HashMismatch(H256),
}

impl std::fmt::Display for TrieLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrieLoadError::MissingNode(h) => write!(f, "missing trie node {h:?}"),
            TrieLoadError::BadNode(h) => write!(f, "undecodable trie node {h:?}"),
            TrieLoadError::HashMismatch(h) => write!(f, "trie node bytes do not hash to {h:?}"),
        }
    }
}

impl std::error::Error for TrieLoadError {}

/// The storage-relevant structure of one encoded trie node: which children it
/// references by hash, and which values it carries (its own and those of any
/// inlined descendants). Used by node stores to traverse persisted tries
/// without materializing them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSummary {
    /// Hash-referenced children, in traversal order.
    pub children: Vec<H256>,
    /// Leaf and branch values found in this node and its inlined descendants.
    pub values: Vec<Vec<u8>>,
}

/// Summarizes one encoded node for traversal: hash-referenced children plus
/// every value embedded in the encoding (including values of inlined
/// descendants — an inlined node is under 32 bytes, so it can never itself
/// hold a 33-byte hash reference, but it can hold a short value).
pub fn summarize_node(bytes: &[u8]) -> Result<NodeSummary, TrieLoadError> {
    let bad = || TrieLoadError::BadNode(keccak256(bytes));
    let item = rlp::decode(bytes).map_err(|_| bad())?;
    let mut summary = NodeSummary::default();
    summarize_item(&item, &mut summary).map_err(|_| bad())?;
    Ok(summary)
}

/// Recursion for [`summarize_node`]; `Err(())` marks a malformed node.
fn summarize_item(item: &Item, out: &mut NodeSummary) -> Result<(), ()> {
    let list = item.as_list().map_err(|_| ())?;
    match list.len() {
        2 => {
            let hp = list[0].as_bytes().map_err(|_| ())?;
            let (_, is_leaf) = Nibbles::from_hex_prefix(hp).ok_or(())?;
            if is_leaf {
                out.values
                    .push(list[1].as_bytes().map_err(|_| ())?.to_vec());
            } else {
                summarize_child(&list[1], out)?;
            }
        }
        17 => {
            for child in &list[..16] {
                match child {
                    Item::Bytes(b) if b.is_empty() => {}
                    other => summarize_child(other, out)?,
                }
            }
            let value = list[16].as_bytes().map_err(|_| ())?;
            if !value.is_empty() {
                out.values.push(value.to_vec());
            }
        }
        _ => return Err(()),
    }
    Ok(())
}

fn summarize_child(item: &Item, out: &mut NodeSummary) -> Result<(), ()> {
    match item {
        Item::Bytes(b) if b.len() == 32 => {
            let arr: [u8; 32] = b[..].try_into().expect("checked length");
            out.children.push(H256(arr));
            Ok(())
        }
        inline @ Item::List(_) => summarize_item(inline, out),
        _ => Err(()),
    }
}

/// Post-order collection of every hashed descendant reachable from `node`
/// (the node itself is NOT emitted — the caller handles it, because the root
/// is emitted unconditionally while inner nodes only when hashed).
///
/// An inlined child (encoding < 32 bytes) cannot itself reference a hashed
/// node — a 33-byte hash reference would not fit — so recursion only follows
/// hash-referenced children.
fn collect_hashed_children(node: &NodeRef, out: &mut Vec<(H256, Vec<u8>)>) {
    let push_child = |child: &NodeRef, out: &mut Vec<(H256, Vec<u8>)>| {
        let enc = child.enc();
        if let Some(h) = enc.hash {
            collect_hashed_children(child, out);
            out.push((h, (*enc.encoding).clone()));
        }
    };
    match node.node() {
        Node::Empty | Node::Leaf { .. } => {}
        Node::Extension { child, .. } => push_child(child, out),
        Node::Branch { children, .. } => {
            for c in children.iter() {
                if !c.is_empty_node() {
                    push_child(c, out);
                }
            }
        }
    }
}

/// Rebuilds a [`Node`] from its decoded RLP item, resolving hashed children.
fn node_from_item(item: &Item, resolver: &dyn NodeResolver) -> Result<Node, TrieLoadError> {
    let bad = || TrieLoadError::BadNode(keccak256(&rlp::encode_item(item)));
    let list = item.as_list().map_err(|_| bad())?;
    match list.len() {
        2 => {
            let hp = list[0].as_bytes().map_err(|_| bad())?;
            let (path, is_leaf) = Nibbles::from_hex_prefix(hp).ok_or_else(bad)?;
            if is_leaf {
                let value = list[1].as_bytes().map_err(|_| bad())?.to_vec();
                Ok(Node::Leaf { path, value })
            } else {
                let child = child_from_item(&list[1], resolver)?;
                Ok(Node::Extension {
                    path,
                    child: NodeRef::new(child),
                })
            }
        }
        17 => {
            let mut children = Node::empty_children();
            for (i, slot) in list[..16].iter().enumerate() {
                children[i] = match slot {
                    Item::Bytes(b) if b.is_empty() => NodeRef::empty(),
                    other => NodeRef::new(child_from_item(other, resolver)?),
                };
            }
            let value_bytes = list[16].as_bytes().map_err(|_| bad())?;
            let value = if value_bytes.is_empty() {
                None
            } else {
                Some(value_bytes.to_vec())
            };
            Ok(Node::Branch { children, value })
        }
        _ => Err(bad()),
    }
}

/// Resolves one child reference: a 32-byte string is a hash looked up through
/// the resolver; a nested list is an inlined node decoded in place.
fn child_from_item(item: &Item, resolver: &dyn NodeResolver) -> Result<Node, TrieLoadError> {
    match item {
        Item::Bytes(b) if b.len() == 32 => {
            let arr: [u8; 32] = b[..].try_into().expect("checked length");
            let hash = H256(arr);
            let bytes = resolver
                .resolve_node(&hash)
                .ok_or(TrieLoadError::MissingNode(hash))?;
            if keccak256(&bytes) != hash {
                return Err(TrieLoadError::HashMismatch(hash));
            }
            let child_item = rlp::decode(&bytes).map_err(|_| TrieLoadError::BadNode(hash))?;
            node_from_item(&child_item, resolver)
        }
        inline @ Item::List(_) => node_from_item(inline, resolver),
        _ => Err(TrieLoadError::BadNode(H256::ZERO)),
    }
}

// ---------------------------------------------------------------------------
// Insert / get / remove
// ---------------------------------------------------------------------------

fn insert_at(node: Node, path: Nibbles, value: Vec<u8>) -> Node {
    match node {
        Node::Empty => Node::Leaf { path, value },
        Node::Leaf {
            path: lpath,
            value: lvalue,
        } => {
            let common = lpath.common_prefix_len(&path);
            if common == lpath.len() && common == path.len() {
                return Node::Leaf { path: lpath, value };
            }
            // Split into a branch (optionally under an extension).
            let mut children = Node::empty_children();
            let mut branch_value = None;
            if common == lpath.len() {
                branch_value = Some(lvalue);
            } else {
                let idx = lpath.at(common) as usize;
                children[idx] = NodeRef::new(Node::Leaf {
                    path: lpath.slice_from(common + 1),
                    value: lvalue,
                });
            }
            if common == path.len() {
                let branch = Node::Branch {
                    children,
                    value: Some(value),
                };
                return wrap_extension(lpath, common, branch);
            }
            let idx = path.at(common) as usize;
            children[idx] = NodeRef::new(Node::Leaf {
                path: path.slice_from(common + 1),
                value,
            });
            let branch = Node::Branch {
                children,
                value: branch_value,
            };
            wrap_extension(path, common, branch)
        }
        Node::Extension { path: epath, child } => {
            let common = epath.common_prefix_len(&path);
            if common == epath.len() {
                let new_child = insert_at(child.take(), path.slice_from(common), value);
                return Node::Extension {
                    path: epath,
                    child: NodeRef::new(new_child),
                };
            }
            // The new key diverges inside this extension: split it.
            let mut children = Node::empty_children();
            let eidx = epath.at(common) as usize;
            let rest = epath.slice_from(common + 1);
            children[eidx] = if rest.is_empty() {
                child
            } else {
                NodeRef::new(Node::Extension { path: rest, child })
            };
            let branch_value;
            if common == path.len() {
                branch_value = Some(value);
            } else {
                branch_value = None;
                let idx = path.at(common) as usize;
                children[idx] = NodeRef::new(Node::Leaf {
                    path: path.slice_from(common + 1),
                    value,
                });
            }
            let branch = Node::Branch {
                children,
                value: branch_value,
            };
            wrap_extension(epath, common, branch)
        }
        Node::Branch {
            mut children,
            value: bvalue,
        } => {
            if path.is_empty() {
                return Node::Branch {
                    children,
                    value: Some(value),
                };
            }
            let idx = path.at(0) as usize;
            let child = std::mem::replace(&mut children[idx], NodeRef::empty());
            children[idx] = NodeRef::new(insert_at(child.take(), path.slice_from(1), value));
            Node::Branch {
                children,
                value: bvalue,
            }
        }
    }
}

/// Wraps `branch` in an extension holding the first `common` nibbles of
/// `full_path`, or returns it bare when the shared prefix is empty.
fn wrap_extension(full_path: Nibbles, common: usize, branch: Node) -> Node {
    if common == 0 {
        branch
    } else {
        Node::Extension {
            path: Nibbles(full_path.0[..common].to_vec()),
            child: NodeRef::new(branch),
        }
    }
}

fn get_at<'a>(node: &'a Node, path: &Nibbles, depth: usize) -> Option<&'a [u8]> {
    match node {
        Node::Empty => None,
        Node::Leaf { path: lpath, value } => {
            if &path.slice_from(depth) == lpath {
                Some(value)
            } else {
                None
            }
        }
        Node::Extension { path: epath, child } => {
            let rest = path.slice_from(depth);
            if rest.len() >= epath.len() && rest.common_prefix_len(epath) == epath.len() {
                get_at(child.node(), path, depth + epath.len())
            } else {
                None
            }
        }
        Node::Branch { children, value } => {
            if depth == path.len() {
                value.as_deref()
            } else {
                get_at(children[path.at(depth) as usize].node(), path, depth + 1)
            }
        }
    }
}

fn remove_at(node: Node, path: &Nibbles, depth: usize) -> (Node, bool) {
    match node {
        Node::Empty => (Node::Empty, false),
        Node::Leaf { path: lpath, value } => {
            if path.slice_from(depth) == lpath {
                (Node::Empty, true)
            } else {
                (Node::Leaf { path: lpath, value }, false)
            }
        }
        Node::Extension { path: epath, child } => {
            let rest = path.slice_from(depth);
            if rest.len() >= epath.len() && rest.common_prefix_len(&epath) == epath.len() {
                let (new_child, removed) = remove_at(child.take(), path, depth + epath.len());
                if !removed {
                    return (
                        Node::Extension {
                            path: epath,
                            child: NodeRef::new(new_child),
                        },
                        false,
                    );
                }
                (collapse_extension(epath, new_child), true)
            } else {
                (Node::Extension { path: epath, child }, false)
            }
        }
        Node::Branch {
            mut children,
            mut value,
        } => {
            let removed = if depth == path.len() {
                let had = value.is_some();
                value = None;
                had
            } else {
                let idx = path.at(depth) as usize;
                let child = std::mem::replace(&mut children[idx], NodeRef::empty());
                let (new_child, removed) = remove_at(child.take(), path, depth + 1);
                children[idx] = NodeRef::new(new_child);
                removed
            };
            if !removed {
                return (Node::Branch { children, value }, false);
            }
            (normalize_branch(children, value), true)
        }
    }
}

/// Re-attaches an extension prefix after its child changed shape.
fn collapse_extension(epath: Nibbles, child: Node) -> Node {
    match child {
        Node::Empty => Node::Empty,
        Node::Leaf { path, value } => Node::Leaf {
            path: epath.concat(&path),
            value,
        },
        Node::Extension { path, child } => Node::Extension {
            path: epath.concat(&path),
            child,
        },
        branch @ Node::Branch { .. } => Node::Extension {
            path: epath,
            child: NodeRef::new(branch),
        },
    }
}

/// Collapses a branch that may have dropped to ≤1 occupant.
fn normalize_branch(mut children: Box<[NodeRef; 16]>, value: Option<Vec<u8>>) -> Node {
    let occupied: Vec<usize> = (0..16).filter(|&i| !children[i].is_empty_node()).collect();
    match (occupied.len(), &value) {
        (0, None) => Node::Empty,
        (0, Some(_)) => Node::Leaf {
            path: Nibbles::default(),
            value: value.expect("checked above"),
        },
        (1, None) => {
            let idx = occupied[0];
            let child = std::mem::replace(&mut children[idx], NodeRef::empty());
            collapse_extension(Nibbles(vec![idx as u8]), child.take())
        }
        _ => Node::Branch { children, value },
    }
}

fn walk(node: &Node, prefix: &mut Vec<u8>, out: &mut Vec<(Vec<u8>, Vec<u8>)>) {
    match node {
        Node::Empty => {}
        Node::Leaf { path, value } => {
            let mut full = prefix.clone();
            full.extend_from_slice(&path.0);
            out.push((pack_nibbles(&full), value.clone()));
        }
        Node::Extension { path, child } => {
            let len = prefix.len();
            prefix.extend_from_slice(&path.0);
            walk(child.node(), prefix, out);
            prefix.truncate(len);
        }
        Node::Branch { children, value } => {
            if let Some(v) = value {
                out.push((pack_nibbles(prefix), v.clone()));
            }
            for (i, c) in children.iter().enumerate() {
                prefix.push(i as u8);
                walk(c.node(), prefix, out);
                prefix.pop();
            }
        }
    }
}

fn pack_nibbles(nibbles: &[u8]) -> Vec<u8> {
    debug_assert!(
        nibbles.len().is_multiple_of(2),
        "byte keys have even nibble count"
    );
    nibbles
        .chunks(2)
        .map(|p| p[0] << 4 | p.get(1).copied().unwrap_or(0))
        .collect()
}

// ---------------------------------------------------------------------------
// Encoding and proofs
// ---------------------------------------------------------------------------

/// RLP encoding of a node. Child references come from each child's memoized
/// [`EncCache`], so a re-encode after a mutation touches only the dirty path.
fn encode_node(node: &Node) -> Vec<u8> {
    match node {
        Node::Empty => vec![0x80],
        Node::Leaf { path, value } => {
            let mut s = RlpStream::new();
            s.begin_list(2);
            s.append_bytes(&path.hex_prefix(true));
            s.append_bytes(value);
            s.out()
        }
        Node::Extension { path, child } => {
            let mut s = RlpStream::new();
            s.begin_list(2);
            s.append_bytes(&path.hex_prefix(false));
            append_child_ref(&mut s, child);
            s.out()
        }
        Node::Branch { children, value } => {
            let mut s = RlpStream::new();
            s.begin_list(17);
            for c in children.iter() {
                if c.is_empty_node() {
                    s.append_bytes(&[]);
                } else {
                    append_child_ref(&mut s, c);
                }
            }
            match value {
                Some(v) => s.append_bytes(v),
                None => s.append_bytes(&[]),
            }
            s.out()
        }
    }
}

/// Appends a child reference: the node itself when its encoding is shorter
/// than 32 bytes, otherwise its keccak hash (the MPT inlining rule).
fn append_child_ref(s: &mut RlpStream, child: &NodeRef) {
    let enc = child.enc();
    match enc.hash {
        Some(h) => s.append_h256(&h),
        None => s.append_raw(&enc.encoding),
    }
}

fn prove_at(node: &NodeRef, path: &Nibbles, depth: usize, proof: &mut Vec<Vec<u8>>) {
    match node.node() {
        Node::Empty => {}
        Node::Leaf { .. } => proof.push((*node.enc().encoding).clone()),
        Node::Extension { path: epath, child } => {
            proof.push((*node.enc().encoding).clone());
            let rest = path.slice_from(depth);
            if rest.len() >= epath.len() && rest.common_prefix_len(epath) == epath.len() {
                // Only recurse into children that are hashed separately;
                // inlined children are already inside this node's encoding.
                if child.enc().hash.is_some() {
                    prove_at(child, path, depth + epath.len(), proof);
                }
            }
        }
        Node::Branch { children, .. } => {
            proof.push((*node.enc().encoding).clone());
            if depth < path.len() {
                let child = &children[path.at(depth) as usize];
                if !child.is_empty_node() && child.enc().hash.is_some() {
                    prove_at(child, path, depth + 1, proof);
                }
            }
        }
    }
}

/// Verifies a Merkle proof produced by [`Trie::prove`].
///
/// Returns `Ok(Some(value))` when the proof shows `key` present with that
/// value, `Ok(None)` when it shows absence, and `Err` when the proof is
/// inconsistent with `root`.
pub fn verify_proof(
    root: H256,
    key: &[u8],
    proof: &[Vec<u8>],
) -> Result<Option<Vec<u8>>, ProofError> {
    let path = Nibbles::from_bytes(key);
    if proof.is_empty() {
        return if root == empty_root() {
            Ok(None)
        } else {
            Err(ProofError::Empty)
        };
    }
    let mut expected = Expected::Hash(root);
    let mut depth = 0usize;
    let mut idx = 0usize;
    loop {
        let node_bytes: Vec<u8> = match &expected {
            Expected::Hash(h) => {
                let bytes = proof.get(idx).ok_or(ProofError::Truncated)?.clone();
                idx += 1;
                if keccak256(&bytes) != *h {
                    return Err(ProofError::HashMismatch);
                }
                bytes
            }
            Expected::Inline(raw) => raw.clone(),
        };
        let item = rlp::decode(&node_bytes).map_err(|_| ProofError::BadNode)?;
        let list = item.as_list().map_err(|_| ProofError::BadNode)?;
        match list.len() {
            2 => {
                let hp = list[0].as_bytes().map_err(|_| ProofError::BadNode)?;
                let (npath, is_leaf) = Nibbles::from_hex_prefix(hp).ok_or(ProofError::BadNode)?;
                let rest = path.slice_from(depth);
                if is_leaf {
                    return if rest == npath {
                        Ok(Some(
                            list[1]
                                .as_bytes()
                                .map_err(|_| ProofError::BadNode)?
                                .to_vec(),
                        ))
                    } else {
                        Ok(None)
                    };
                }
                if rest.len() < npath.len() || rest.common_prefix_len(&npath) != npath.len() {
                    return Ok(None);
                }
                depth += npath.len();
                expected = child_expected(&list[1])?;
            }
            17 => {
                if depth == path.len() {
                    let v = list[16].as_bytes().map_err(|_| ProofError::BadNode)?;
                    return Ok(if v.is_empty() { None } else { Some(v.to_vec()) });
                }
                let branch = &list[path.at(depth) as usize];
                depth += 1;
                match branch {
                    Item::Bytes(b) if b.is_empty() => return Ok(None),
                    _ => expected = child_expected(branch)?,
                }
            }
            _ => return Err(ProofError::BadNode),
        }
    }
}

enum Expected {
    Hash(H256),
    Inline(Vec<u8>),
}

fn child_expected(item: &Item) -> Result<Expected, ProofError> {
    match item {
        Item::Bytes(b) if b.len() == 32 => {
            let arr: [u8; 32] = b[..].try_into().expect("checked length");
            Ok(Expected::Hash(H256(arr)))
        }
        // An inlined node decodes as a list inside the parent.
        inline @ Item::List(_) => Ok(Expected::Inline(rlp::encode_item(inline))),
        _ => Err(ProofError::BadNode),
    }
}

/// Proof verification failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProofError {
    /// Proof empty for a non-empty root.
    Empty,
    /// Proof ran out of nodes.
    Truncated,
    /// A node's hash did not match its parent's reference.
    HashMismatch,
    /// A node failed to decode.
    BadNode,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trie_root_matches_ethereum() {
        let t = Trie::new();
        assert_eq!(
            format!("{:?}", t.root_hash()),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
        );
        assert!(t.is_empty());
    }

    #[test]
    fn ethereum_foundation_fixture_root() {
        // The "branching" fixture from ethereum/tests trietest.json
        // (non-secure trie).
        let mut t = Trie::new();
        t.insert(b"do", b"verb".to_vec());
        t.insert(b"dog", b"puppy".to_vec());
        t.insert(b"doge", b"coin".to_vec());
        t.insert(b"horse", b"stallion".to_vec());
        assert_eq!(
            format!("{:?}", t.root_hash()),
            "0x5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
        );
    }

    #[test]
    fn insert_get_basic() {
        let mut t = Trie::new();
        t.insert(b"key1", b"value1".to_vec());
        t.insert(b"key2", b"value2".to_vec());
        assert_eq!(t.get(b"key1"), Some(&b"value1"[..]));
        assert_eq!(t.get(b"key2"), Some(&b"value2"[..]));
        assert_eq!(t.get(b"key3"), None);
    }

    #[test]
    fn overwrite_updates_value_and_root() {
        let mut t = Trie::new();
        t.insert(b"k", b"v1".to_vec());
        let r1 = t.root_hash();
        t.insert(b"k", b"v2".to_vec());
        assert_eq!(t.get(b"k"), Some(&b"v2"[..]));
        assert_ne!(t.root_hash(), r1);
        t.insert(b"k", b"v1".to_vec());
        assert_eq!(t.root_hash(), r1);
    }

    #[test]
    fn root_is_insertion_order_independent() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..50u32)
            .map(|i| (i.to_be_bytes().to_vec(), format!("value-{i}").into_bytes()))
            .collect();
        let mut t1 = Trie::new();
        for (k, v) in &pairs {
            t1.insert(k, v.clone());
        }
        let mut t2 = Trie::new();
        for (k, v) in pairs.iter().rev() {
            t2.insert(k, v.clone());
        }
        assert_eq!(t1.root_hash(), t2.root_hash());
    }

    #[test]
    fn remove_restores_previous_root() {
        let mut t = Trie::new();
        t.insert(b"do", b"verb".to_vec());
        t.insert(b"dog", b"puppy".to_vec());
        let before = t.root_hash();
        t.insert(b"doge", b"coin".to_vec());
        assert!(t.remove(b"doge"));
        assert_eq!(t.root_hash(), before);
        assert!(!t.remove(b"doge"));
    }

    #[test]
    fn remove_everything_empties() {
        let mut t = Trie::new();
        let keys: Vec<Vec<u8>> = (0..30u32).map(|i| i.to_be_bytes().to_vec()).collect();
        for k in &keys {
            t.insert(k, b"x".to_vec());
        }
        for k in &keys {
            assert!(t.remove(k), "missing {k:?}");
        }
        assert!(t.is_empty());
        assert_eq!(t.root_hash(), empty_root());
    }

    #[test]
    fn empty_value_insert_is_delete() {
        let mut t = Trie::new();
        t.insert(b"a", b"1".to_vec());
        t.insert(b"a", Vec::new());
        assert!(t.is_empty());
    }

    #[test]
    fn branch_value_paths() {
        // "a" is a strict prefix of "ab": forces a branch with a value.
        let mut t = Trie::new();
        t.insert(b"a", b"short".to_vec());
        t.insert(b"ab", b"longer".to_vec());
        assert_eq!(t.get(b"a"), Some(&b"short"[..]));
        assert_eq!(t.get(b"ab"), Some(&b"longer"[..]));
        assert!(t.remove(b"a"));
        assert_eq!(t.get(b"ab"), Some(&b"longer"[..]));
        // After removing the branch value the trie must collapse back to a
        // single leaf with the same root as a fresh insert.
        let mut fresh = Trie::new();
        fresh.insert(b"ab", b"longer".to_vec());
        assert_eq!(t.root_hash(), fresh.root_hash());
    }

    #[test]
    fn iter_returns_sorted_pairs() {
        let mut t = Trie::new();
        t.insert(b"dog", b"puppy".to_vec());
        t.insert(b"cat", b"meow".to_vec());
        t.insert(b"bird", b"tweet".to_vec());
        let items = t.iter();
        let keys: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"bird"[..], &b"cat"[..], &b"dog"[..]]);
    }

    #[test]
    fn clone_shares_structure_and_diverges_on_write() {
        let mut t = Trie::new();
        for i in 0..100u32 {
            t.insert(&i.to_be_bytes(), format!("v{i}").into_bytes());
        }
        let root = t.root_hash();
        let snap = t.clone();
        // Mutating the original must not disturb the clone…
        t.insert(&7u32.to_be_bytes(), b"changed".to_vec());
        t.remove(&55u32.to_be_bytes());
        assert_eq!(snap.root_hash(), root);
        assert_eq!(snap.get(&7u32.to_be_bytes()), Some(&b"v7"[..]));
        assert_eq!(snap.get(&55u32.to_be_bytes()), Some(&b"v55"[..]));
        // …and the mutated trie equals a fresh build of the same contents.
        let mut fresh = Trie::new();
        for i in 0..100u32 {
            if i == 55 {
                continue;
            }
            let v = if i == 7 {
                b"changed".to_vec()
            } else {
                format!("v{i}").into_bytes()
            };
            fresh.insert(&i.to_be_bytes(), v);
        }
        assert_eq!(t.root_hash(), fresh.root_hash());
    }

    #[test]
    fn memoized_root_survives_interleaved_reads_and_writes() {
        let mut t = Trie::new();
        let mut reference = Trie::new();
        for i in 0..60u32 {
            t.insert(&i.to_be_bytes(), format!("v{i}").into_bytes());
            // Force memoization mid-build; the final root must still match a
            // build that never hashed intermediate states.
            let _ = t.root_hash();
            reference.insert(&i.to_be_bytes(), format!("v{i}").into_bytes());
        }
        assert_eq!(t.root_hash(), reference.root_hash());
        assert_eq!(t.commit_nodes().0, reference.commit_nodes().0);
    }

    #[test]
    fn proof_of_present_key_verifies() {
        let mut t = Trie::new();
        for i in 0..100u32 {
            t.insert(&i.to_be_bytes(), format!("v{i}").into_bytes());
        }
        let root = t.root_hash();
        for i in [0u32, 7, 55, 99] {
            let proof = t.prove(&i.to_be_bytes());
            let got = verify_proof(root, &i.to_be_bytes(), &proof).unwrap();
            assert_eq!(got, Some(format!("v{i}").into_bytes()));
        }
    }

    #[test]
    fn proof_of_absent_key_verifies_absence() {
        let mut t = Trie::new();
        for i in 0..20u32 {
            t.insert(&i.to_be_bytes(), b"v".to_vec());
        }
        let root = t.root_hash();
        let absent = 999u32.to_be_bytes();
        let proof = t.prove(&absent);
        assert_eq!(verify_proof(root, &absent, &proof).unwrap(), None);
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut t = Trie::new();
        for i in 0..50u32 {
            t.insert(&i.to_be_bytes(), format!("value-{i}").into_bytes());
        }
        let root = t.root_hash();
        let key = 7u32.to_be_bytes();
        let mut proof = t.prove(&key);
        assert!(!proof.is_empty());
        // Flip one byte in the first (root) node.
        proof[0][1] ^= 0xFF;
        assert!(verify_proof(root, &key, &proof).is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        let mut t = Trie::new();
        t.insert(b"hello", b"world".to_vec());
        let proof = t.prove(b"hello");
        let bad_root = H256::from_low_u64(123);
        assert!(verify_proof(bad_root, b"hello", &proof).is_err());
    }

    #[test]
    fn commit_nodes_empty_trie() {
        let (root, nodes) = Trie::new().commit_nodes();
        assert_eq!(root, empty_root());
        assert!(nodes.is_empty());
        let loaded = Trie::from_root(root, &std::collections::HashMap::new()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn commit_nodes_roundtrips_through_resolver() {
        let mut t = Trie::new();
        for i in 0..200u32 {
            t.insert(&i.to_be_bytes(), format!("value-{i}").into_bytes());
        }
        let (root, nodes) = t.commit_nodes();
        assert_eq!(root, t.root_hash());
        // Every emitted node hashes to its key and is >= 32 bytes (hashed,
        // not inlined).
        let mut db = std::collections::HashMap::new();
        for (h, enc) in &nodes {
            assert_eq!(keccak256(enc), *h);
            assert!(enc.len() >= 32);
            db.insert(*h, enc.clone());
        }
        let loaded = Trie::from_root(root, &db).unwrap();
        assert_eq!(loaded.root_hash(), root);
        assert_eq!(loaded.iter(), t.iter());
    }

    #[test]
    fn incremental_commit_nodes_match_fresh_build() {
        // commit_nodes on a trie mutated after a prior commit (memo warm)
        // must emit exactly what a cold build of the same contents emits.
        let mut t = Trie::new();
        for i in 0..150u32 {
            t.insert(&i.to_be_bytes(), format!("value-{i}").into_bytes());
        }
        let _ = t.commit_nodes(); // warm the memo
        t.insert(&3u32.to_be_bytes(), b"mutated".to_vec());
        t.remove(&77u32.to_be_bytes());
        let (root_inc, mut nodes_inc) = t.commit_nodes();

        let mut fresh = Trie::new();
        for i in 0..150u32 {
            if i == 77 {
                continue;
            }
            let v = if i == 3 {
                b"mutated".to_vec()
            } else {
                format!("value-{i}").into_bytes()
            };
            fresh.insert(&i.to_be_bytes(), v);
        }
        let (root_cold, mut nodes_cold) = fresh.commit_nodes();
        assert_eq!(root_inc, root_cold);
        nodes_inc.sort();
        nodes_cold.sort();
        assert_eq!(nodes_inc, nodes_cold);
    }

    /// Hashed (keccak-style) keys, as the account and storage tries use.
    fn hashed_key(i: u64) -> Vec<u8> {
        keccak256(&i.to_be_bytes()).as_bytes().to_vec()
    }

    #[test]
    fn apply_batch_fresh_build_matches_serial_across_thread_counts() {
        let updates: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..300u64)
            .map(|i| (hashed_key(i), Some(format!("value-{i}").into_bytes())))
            .collect();
        let mut reference = Trie::new();
        reference.apply_serial(updates.clone());
        let (ref_root, mut ref_nodes) = reference.commit_nodes();
        ref_nodes.sort();
        for threads in [1, 2, 3, 5, 8, 16] {
            let mut t = Trie::new();
            t.apply_batch(updates.clone(), threads);
            let (root, mut nodes) = t.commit_nodes();
            assert_eq!(root, ref_root, "root diverged at {threads} threads");
            nodes.sort();
            assert_eq!(nodes, ref_nodes, "node set diverged at {threads} threads");
        }
    }

    #[test]
    fn apply_batch_incremental_mix_matches_serial() {
        // Warm trie + a batch mixing overwrites, inserts, removals of
        // present and absent keys, and empty-value inserts (deletes).
        let build = |threads: usize| {
            let mut t = Trie::new();
            t.apply_batch(
                (0..200u64)
                    .map(|i| (hashed_key(i), Some(vec![1, 2, 3])))
                    .collect(),
                threads,
            );
            let _ = t.commit_nodes(); // warm the memo
            let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..300u64)
                .map(|i| {
                    let update = match i % 4 {
                        0 => Some(format!("over-{i}").into_bytes()),
                        1 => None,
                        2 => Some(Vec::new()),
                        _ => Some(vec![7; 40]),
                    };
                    (hashed_key(i), update)
                })
                .collect();
            t.apply_batch(batch, threads);
            t
        };
        let reference = build(1);
        let (ref_root, mut ref_nodes) = reference.commit_nodes();
        ref_nodes.sort();
        for threads in [2, 4, 16] {
            let t = build(threads);
            let (root, mut nodes) = t.commit_nodes();
            assert_eq!(root, ref_root, "root diverged at {threads} threads");
            nodes.sort();
            assert_eq!(nodes, ref_nodes, "node set diverged at {threads} threads");
            assert_eq!(t.iter(), reference.iter());
        }
    }

    #[test]
    fn apply_batch_below_threshold_and_drain_to_empty() {
        let updates: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            (0..10u64).map(|i| (hashed_key(i), Some(vec![9]))).collect();
        let mut t = Trie::new();
        t.apply_batch(updates.clone(), 8);
        let mut reference = Trie::new();
        reference.apply_serial(updates);
        assert_eq!(t.root_hash(), reference.root_hash());
        // Parallel removal of everything must land back on the empty root.
        let mut full = Trie::new();
        full.apply_batch(
            (0..100u64)
                .map(|i| (hashed_key(i), Some(vec![1])))
                .collect(),
            4,
        );
        full.apply_batch((0..100u64).map(|i| (hashed_key(i), None)).collect(), 4);
        assert!(full.is_empty());
        assert_eq!(full.root_hash(), empty_root());
    }

    #[test]
    fn from_root_reports_missing_node() {
        let mut t = Trie::new();
        for i in 0..50u32 {
            t.insert(&i.to_be_bytes(), format!("value-{i}").into_bytes());
        }
        let (root, nodes) = t.commit_nodes();
        let mut db: std::collections::HashMap<H256, Vec<u8>> = nodes.into_iter().collect();
        // Drop a non-root node; loading must fail with MissingNode.
        let victim = *db.keys().find(|h| **h != root).unwrap();
        db.remove(&victim);
        assert_eq!(
            Trie::from_root(root, &db),
            Err(TrieLoadError::MissingNode(victim))
        );
    }

    #[test]
    fn summarize_node_covers_all_children_and_values() {
        let mut t = Trie::new();
        for i in 0..200u32 {
            t.insert(&i.to_be_bytes(), format!("value-{i}").into_bytes());
        }
        let (root, nodes) = t.commit_nodes();
        let db: std::collections::HashMap<H256, Vec<u8>> = nodes.iter().cloned().collect();
        // BFS from the root using summaries; we must reach every stored node
        // exactly as often as commit_nodes emitted it, and collect every value.
        let mut counts: std::collections::HashMap<H256, usize> = std::collections::HashMap::new();
        let mut values = Vec::new();
        let mut queue = vec![root];
        while let Some(h) = queue.pop() {
            *counts.entry(h).or_insert(0) += 1;
            let summary = summarize_node(&db[&h]).unwrap();
            values.extend(summary.values);
            queue.extend(summary.children);
        }
        let mut emitted: std::collections::HashMap<H256, usize> = std::collections::HashMap::new();
        for (h, _) in &nodes {
            *emitted.entry(*h).or_insert(0) += 1;
        }
        assert_eq!(counts, emitted);
        values.sort();
        let mut expected: Vec<Vec<u8>> = t.iter().into_iter().map(|(_, v)| v).collect();
        expected.sort();
        assert_eq!(values, expected);
    }
}
