//! The world state: every account plus its storage, with MPT commitment.
//!
//! `WorldState` is the flat, mutable representation both executors operate
//! on. [`WorldState::state_root`] commits it into the authenticated form — a
//! *secure* Merkle Patricia Trie (keys hashed with keccak, as in Ethereum) of
//! RLP-encoded accounts, each carrying the root of its own storage trie.

use std::collections::HashMap;
use std::sync::Arc;

use bp_crypto::keccak256;
use bp_types::{AccessKey, Address, WriteSet, H256, U256};

use crate::account::{empty_code_hash, Account};
use crate::trie::Trie;

/// One account's in-memory state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccountState {
    /// Transaction/creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Contract storage (absent slots are zero).
    pub storage: HashMap<H256, U256>,
    /// Contract code (empty for EOAs). `Arc` so snapshots share it.
    pub code: Arc<Vec<u8>>,
}

impl AccountState {
    /// True iff this account would not be persisted (EIP-161 emptiness).
    pub fn is_empty(&self) -> bool {
        self.nonce == 0 && self.balance.is_zero() && self.code.is_empty() && self.storage.is_empty()
    }
}

/// The mutable world state of the chain.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorldState {
    accounts: HashMap<Address, AccountState>,
}

impl WorldState {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to an account, if it exists.
    pub fn account(&self, addr: &Address) -> Option<&AccountState> {
        self.accounts.get(addr)
    }

    /// Mutable access, creating the account if needed.
    pub fn account_mut(&mut self, addr: Address) -> &mut AccountState {
        self.accounts.entry(addr).or_default()
    }

    /// The balance of `addr` (zero if absent).
    pub fn balance(&self, addr: &Address) -> U256 {
        self.accounts
            .get(addr)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// The nonce of `addr` (zero if absent).
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.accounts.get(addr).map(|a| a.nonce).unwrap_or(0)
    }

    /// The storage slot `key` of `addr` (zero if absent).
    pub fn storage(&self, addr: &Address, key: &H256) -> U256 {
        self.accounts
            .get(addr)
            .and_then(|a| a.storage.get(key))
            .copied()
            .unwrap_or(U256::ZERO)
    }

    /// The code of `addr` (empty if absent).
    pub fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.accounts
            .get(addr)
            .map(|a| Arc::clone(&a.code))
            .unwrap_or_default()
    }

    /// Sets a balance, creating the account if needed.
    pub fn set_balance(&mut self, addr: Address, balance: U256) {
        self.account_mut(addr).balance = balance;
    }

    /// Sets a nonce.
    pub fn set_nonce(&mut self, addr: Address, nonce: u64) {
        self.account_mut(addr).nonce = nonce;
    }

    /// Sets a storage slot. Writing zero deletes the slot, as in Ethereum.
    pub fn set_storage(&mut self, addr: Address, key: H256, value: U256) {
        let acct = self.account_mut(addr);
        if value.is_zero() {
            acct.storage.remove(&key);
        } else {
            acct.storage.insert(key, value);
        }
    }

    /// Installs contract code.
    pub fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        self.account_mut(addr).code = Arc::new(code);
    }

    /// Reads the value behind an [`AccessKey`] as a 256-bit word (code reads
    /// return the code hash, which is what conflict detection needs).
    pub fn read_key(&self, key: &AccessKey) -> U256 {
        match key {
            AccessKey::Balance(a) => self.balance(a),
            AccessKey::Nonce(a) => U256::from(self.nonce(a)),
            AccessKey::Storage(a, slot) => self.storage(a, slot),
            AccessKey::Code(a) => {
                let code = self.code(a);
                if code.is_empty() {
                    U256::ZERO
                } else {
                    keccak256(&code).to_u256()
                }
            }
        }
    }

    /// Applies one committed write set (used when sealing a block and by the
    /// validator's applier). `Code` writes are ignored here — code bytes are
    /// installed via [`WorldState::set_code`] by the execution layer; the
    /// write-set entry only versions the key for conflict detection.
    pub fn apply_writes(&mut self, writes: &WriteSet) {
        for (key, value) in writes {
            match key {
                AccessKey::Balance(a) => self.set_balance(*a, *value),
                AccessKey::Nonce(a) => {
                    self.set_nonce(*a, value.low_u64());
                }
                AccessKey::Storage(a, slot) => self.set_storage(*a, *slot, *value),
                AccessKey::Code(_) => {}
            }
        }
    }

    /// Number of existing accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Iterates over all accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &AccountState)> {
        self.accounts.iter()
    }

    /// Commits the world into a secure MPT and returns the state root.
    ///
    /// Empty accounts are skipped (EIP-161). Storage tries use
    /// `keccak(slot) → rlp(value)` leaves; the account trie uses
    /// `keccak(address) → rlp(account)`.
    pub fn state_root(&self) -> H256 {
        let mut account_trie = Trie::new();
        for (addr, acct) in &self.accounts {
            if acct.is_empty() {
                continue;
            }
            let storage_root = storage_root(&acct.storage);
            let code_hash = if acct.code.is_empty() {
                empty_code_hash()
            } else {
                keccak256(&acct.code)
            };
            let body = Account {
                nonce: acct.nonce,
                balance: acct.balance,
                storage_root,
                code_hash,
            };
            account_trie.insert(keccak256(addr.as_bytes()).as_bytes(), body.rlp_encode());
        }
        account_trie.root_hash()
    }

    /// Commits the world into its secure MPT form and returns the state root
    /// together with every hashed trie node — the account trie's plus those
    /// of each non-empty storage trie. Feeding the nodes to a node database
    /// lets [`crate::trie::Trie::from_root`] re-open the account trie and,
    /// via the `storage_root` inside each account body, every storage trie.
    ///
    /// Nodes are emitted once per reference (see
    /// [`crate::trie::Trie::commit_nodes`]), so reference-counting stores
    /// stay balanced across commit and prune.
    pub fn commit_tries(&self) -> (H256, Vec<(H256, Vec<u8>)>) {
        let mut nodes = Vec::new();
        let mut account_trie = Trie::new();
        for (addr, acct) in &self.accounts {
            if acct.is_empty() {
                continue;
            }
            let mut storage_trie = Trie::new();
            for (slot, value) in &acct.storage {
                if value.is_zero() {
                    continue;
                }
                let leaf = bp_crypto::rlp::encode_bytes(&value.to_be_bytes_trimmed());
                storage_trie.insert(keccak256(slot.as_bytes()).as_bytes(), leaf);
            }
            let (storage_root, storage_nodes) = storage_trie.commit_nodes();
            nodes.extend(storage_nodes);
            let code_hash = if acct.code.is_empty() {
                empty_code_hash()
            } else {
                keccak256(&acct.code)
            };
            let body = Account {
                nonce: acct.nonce,
                balance: acct.balance,
                storage_root,
                code_hash,
            };
            account_trie.insert(keccak256(addr.as_bytes()).as_bytes(), body.rlp_encode());
        }
        let (root, account_nodes) = account_trie.commit_nodes();
        nodes.extend(account_nodes);
        (root, nodes)
    }
}

/// Root of one account's storage trie.
pub fn storage_root(storage: &HashMap<H256, U256>) -> H256 {
    let mut trie = Trie::new();
    for (slot, value) in storage {
        if value.is_zero() {
            continue;
        }
        let leaf = bp_crypto::rlp::encode_bytes(&value.to_be_bytes_trimmed());
        trie.insert(keccak256(slot.as_bytes()).as_bytes(), leaf);
    }
    trie.root_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn empty_world_has_empty_root() {
        assert_eq!(WorldState::new().state_root(), trie::empty_root());
    }

    #[test]
    fn reads_of_absent_accounts_are_zero() {
        let w = WorldState::new();
        assert_eq!(w.balance(&addr(1)), U256::ZERO);
        assert_eq!(w.nonce(&addr(1)), 0);
        assert_eq!(w.storage(&addr(1), &H256::ZERO), U256::ZERO);
        assert!(w.code(&addr(1)).is_empty());
    }

    #[test]
    fn state_root_changes_with_content() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(100u64));
        let r1 = w.state_root();
        assert_ne!(r1, trie::empty_root());
        w.set_balance(addr(2), U256::from(50u64));
        let r2 = w.state_root();
        assert_ne!(r1, r2);
        // Same contents built differently produce the same root.
        let mut w2 = WorldState::new();
        w2.set_balance(addr(2), U256::from(50u64));
        w2.set_balance(addr(1), U256::from(100u64));
        assert_eq!(w2.state_root(), r2);
    }

    #[test]
    fn empty_accounts_do_not_affect_root() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(5u64));
        let r = w.state_root();
        // Touch an account without giving it any substance.
        w.account_mut(addr(9));
        assert_eq!(w.state_root(), r);
    }

    #[test]
    fn zero_storage_write_deletes_slot() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        let r_before = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(1), U256::from(9u64));
        let r_with = w.state_root();
        assert_ne!(r_before, r_with);
        w.set_storage(addr(1), H256::from_low_u64(1), U256::ZERO);
        assert_eq!(w.state_root(), r_before);
    }

    #[test]
    fn storage_affects_root_via_account() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        w.set_storage(addr(1), H256::from_low_u64(0), U256::from(77u64));
        let r1 = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(0), U256::from(78u64));
        assert_ne!(w.state_root(), r1);
    }

    #[test]
    fn read_key_dispatch() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(7u64));
        w.set_nonce(addr(1), 3);
        w.set_storage(addr(1), H256::from_low_u64(5), U256::from(9u64));
        w.set_code(addr(2), vec![0x60, 0x00]);
        assert_eq!(w.read_key(&AccessKey::Balance(addr(1))), U256::from(7u64));
        assert_eq!(w.read_key(&AccessKey::Nonce(addr(1))), U256::from(3u64));
        assert_eq!(
            w.read_key(&AccessKey::Storage(addr(1), H256::from_low_u64(5))),
            U256::from(9u64)
        );
        assert_eq!(
            w.read_key(&AccessKey::Code(addr(2))),
            keccak256(&[0x60, 0x00]).to_u256()
        );
        assert_eq!(w.read_key(&AccessKey::Code(addr(3))), U256::ZERO);
    }

    #[test]
    fn apply_writes_matches_direct_mutation() {
        let mut direct = WorldState::new();
        direct.set_balance(addr(1), U256::from(10u64));
        direct.set_nonce(addr(2), 4);
        direct.set_storage(addr(3), H256::from_low_u64(1), U256::from(6u64));

        let mut via_writes = WorldState::new();
        let mut ws: WriteSet = Default::default();
        ws.insert(AccessKey::Balance(addr(1)), U256::from(10u64));
        ws.insert(AccessKey::Nonce(addr(2)), U256::from(4u64));
        ws.insert(
            AccessKey::Storage(addr(3), H256::from_low_u64(1)),
            U256::from(6u64),
        );
        via_writes.apply_writes(&ws);
        assert_eq!(direct.state_root(), via_writes.state_root());
    }

    #[test]
    fn commit_tries_matches_state_root_and_roundtrips() {
        let mut w = WorldState::new();
        for i in 0..40u64 {
            w.set_balance(addr(i), U256::from(1000 + i));
            w.set_nonce(addr(i), i);
            if i % 3 == 0 {
                w.set_storage(addr(i), H256::from_low_u64(i), U256::from(7 * i + 1));
                w.set_storage(addr(i), H256::from_low_u64(i + 1), U256::from(9 * i + 1));
            }
        }
        let (root, nodes) = w.commit_tries();
        assert_eq!(root, w.state_root());
        let db: std::collections::HashMap<H256, Vec<u8>> = nodes.into_iter().collect();
        // The account trie reloads from the emitted nodes…
        let account_trie = Trie::from_root(root, &db).unwrap();
        assert_eq!(account_trie.root_hash(), root);
        // …and every account body's storage trie resolves through them too.
        let mut nonempty_storage = 0;
        for (_, body) in account_trie.iter() {
            let acct = Account::rlp_decode(&body).unwrap();
            let storage = Trie::from_root(acct.storage_root, &db).unwrap();
            assert_eq!(storage.root_hash(), acct.storage_root);
            if acct.storage_root != trie::empty_root() {
                nonempty_storage += 1;
            }
        }
        assert!(
            nonempty_storage > 0,
            "fixture should exercise storage tries"
        );
    }

    #[test]
    fn clone_is_deep_for_storage() {
        let mut w = WorldState::new();
        w.set_storage(addr(1), H256::ZERO, U256::ONE);
        w.set_balance(addr(1), U256::ONE);
        let snap = w.clone();
        w.set_storage(addr(1), H256::ZERO, U256::from(2u64));
        assert_eq!(snap.storage(&addr(1), &H256::ZERO), U256::ONE);
    }
}
