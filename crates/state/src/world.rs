//! The world state: every account plus its storage, with MPT commitment.
//!
//! `WorldState` is the flat, mutable representation both executors operate
//! on. [`WorldState::state_root`] commits it into the authenticated form — a
//! *secure* Merkle Patricia Trie (keys hashed with keccak, as in Ethereum) of
//! RLP-encoded accounts, each carrying the root of its own storage trie.
//!
//! Commitment is **incremental**: every mutation records which account (and
//! which storage slots) it dirtied, and the tries produced by the previous
//! commit are retained. `state_root()` / `commit_tries()` then re-insert only
//! the dirty entries — removing deleted slots and emptied accounts — so the
//! per-block cost is O(dirty keys · log n) instead of O(total state). Dirty
//! accounts' storage tries are hashed in parallel. In debug builds every
//! incremental root is cross-checked against a from-scratch rebuild
//! ([`WorldState::rebuild_root`]).
//!
//! Accounts are held behind [`Arc`] with clone-on-write semantics, so
//! cloning a `WorldState` ([`WorldState::snapshot`]) is O(accounts) pointer
//! bumps and subsequent writes copy only the touched accounts — the
//! validator pipeline takes one such snapshot per block.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, PoisonError};

use bp_crypto::keccak256;
use bp_types::{AccessKey, Address, WriteSet, H256, U256};

use crate::account::{empty_code_hash, Account};
use crate::trie::{self, Trie};

/// One account's in-memory state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccountState {
    /// Transaction/creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Contract storage (absent slots are zero).
    pub storage: HashMap<H256, U256>,
    /// Contract code (empty for EOAs). `Arc` so snapshots share it.
    pub code: Arc<Vec<u8>>,
}

impl AccountState {
    /// True iff this account would not be persisted (EIP-161 emptiness).
    pub fn is_empty(&self) -> bool {
        self.nonce == 0 && self.balance.is_zero() && self.code.is_empty() && self.storage.is_empty()
    }
}

/// What a mutation dirtied within one account since the last commit.
#[derive(Clone, Debug)]
enum DirtyAccount {
    /// The account body and/or the listed storage slots changed; every other
    /// slot is untouched, so the retained storage trie can be patched.
    Slots(HashSet<H256>),
    /// The account was mutated through an escape hatch
    /// ([`WorldState::account_mut`]) that may have rewritten anything —
    /// rebuild its storage trie from scratch.
    Full,
}

/// The tries produced by the last commit, reused as the base for the next.
#[derive(Clone, Debug)]
struct WorldCommit {
    root: H256,
    account_trie: Trie,
    /// Storage tries of accounts with non-empty storage. Tries are
    /// structurally shared with prior commits, so cloning this map is cheap.
    storage_tries: HashMap<Address, Trie>,
}

impl Default for WorldCommit {
    fn default() -> Self {
        WorldCommit {
            root: trie::empty_root(),
            account_trie: Trie::new(),
            storage_tries: HashMap::new(),
        }
    }
}

/// Dirty bookkeeping between commits. Lives behind a mutex only so the
/// read-side `state_root(&self)` can refresh the memo; all mutation paths
/// take `&mut self` and use the lock-free `get_mut`.
#[derive(Debug, Default)]
struct CommitTracker {
    /// Accounts touched since the last commit. Absent entirely ⇒ the last
    /// commit is current.
    dirty: HashMap<Address, DirtyAccount>,
    /// The last commit, shared O(1) across clones until one of them
    /// recommits.
    commit: Option<Arc<WorldCommit>>,
}

/// The mutable world state of the chain.
#[derive(Debug, Default)]
pub struct WorldState {
    accounts: HashMap<Address, Arc<AccountState>>,
    tracker: Mutex<CommitTracker>,
}

impl Clone for WorldState {
    /// Copy-on-write: O(accounts) refcount bumps. Account bodies, storage
    /// maps, code blobs, and the retained commit tries are all shared until
    /// either side writes.
    fn clone(&self) -> Self {
        let tracker = self.tracker.lock().unwrap_or_else(PoisonError::into_inner);
        WorldState {
            accounts: self.accounts.clone(),
            tracker: Mutex::new(CommitTracker {
                dirty: tracker.dirty.clone(),
                commit: tracker.commit.clone(),
            }),
        }
    }
}

impl PartialEq for WorldState {
    /// Equality is by account contents only — commit memos are derived data.
    fn eq(&self, other: &Self) -> bool {
        self.accounts == other.accounts
    }
}

impl WorldState {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy-on-write snapshot: the validator pipeline's per-block base.
    /// Alias of `clone()`, named for intent — the copy is O(accounts)
    /// pointer bumps, and writes to either side copy only touched accounts.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Read access to an account, if it exists.
    pub fn account(&self, addr: &Address) -> Option<&AccountState> {
        self.accounts.get(addr).map(|a| &**a)
    }

    /// Mutable access, creating the account if needed.
    ///
    /// This hands out the raw account — including its storage map — so the
    /// account is conservatively marked fully dirty and its storage trie is
    /// rebuilt at the next commit. Prefer the typed setters, which track
    /// exactly what changed.
    pub fn account_mut(&mut self, addr: Address) -> &mut AccountState {
        self.tracker
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .dirty
            .insert(addr, DirtyAccount::Full);
        Arc::make_mut(self.accounts.entry(addr).or_default())
    }

    /// Marks the account body (balance/nonce/code) dirty without touching
    /// storage slots, and returns the account for mutation.
    fn body_mut(&mut self, addr: Address) -> &mut AccountState {
        self.tracker
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .dirty
            .entry(addr)
            .or_insert_with(|| DirtyAccount::Slots(HashSet::new()));
        Arc::make_mut(self.accounts.entry(addr).or_default())
    }

    /// The balance of `addr` (zero if absent).
    pub fn balance(&self, addr: &Address) -> U256 {
        self.accounts
            .get(addr)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// The nonce of `addr` (zero if absent).
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.accounts.get(addr).map(|a| a.nonce).unwrap_or(0)
    }

    /// The storage slot `key` of `addr` (zero if absent).
    pub fn storage(&self, addr: &Address, key: &H256) -> U256 {
        self.accounts
            .get(addr)
            .and_then(|a| a.storage.get(key))
            .copied()
            .unwrap_or(U256::ZERO)
    }

    /// The code of `addr` (empty if absent).
    pub fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        self.accounts
            .get(addr)
            .map(|a| Arc::clone(&a.code))
            .unwrap_or_default()
    }

    /// Sets a balance, creating the account if needed.
    pub fn set_balance(&mut self, addr: Address, balance: U256) {
        self.body_mut(addr).balance = balance;
    }

    /// Sets a nonce.
    pub fn set_nonce(&mut self, addr: Address, nonce: u64) {
        self.body_mut(addr).nonce = nonce;
    }

    /// Sets a storage slot. Writing zero deletes the slot, as in Ethereum.
    pub fn set_storage(&mut self, addr: Address, key: H256, value: U256) {
        let tracker = self
            .tracker
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        match tracker
            .dirty
            .entry(addr)
            .or_insert_with(|| DirtyAccount::Slots(HashSet::new()))
        {
            DirtyAccount::Slots(slots) => {
                slots.insert(key);
            }
            DirtyAccount::Full => {}
        }
        let acct = Arc::make_mut(self.accounts.entry(addr).or_default());
        if value.is_zero() {
            acct.storage.remove(&key);
        } else {
            acct.storage.insert(key, value);
        }
    }

    /// Installs contract code.
    pub fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        self.body_mut(addr).code = Arc::new(code);
    }

    /// Reads the value behind an [`AccessKey`] as a 256-bit word (code reads
    /// return the code hash, which is what conflict detection needs).
    pub fn read_key(&self, key: &AccessKey) -> U256 {
        match key {
            AccessKey::Balance(a) => self.balance(a),
            AccessKey::Nonce(a) => U256::from(self.nonce(a)),
            AccessKey::Storage(a, slot) => self.storage(a, slot),
            AccessKey::Code(a) => {
                let code = self.code(a);
                if code.is_empty() {
                    U256::ZERO
                } else {
                    keccak256(&code).to_u256()
                }
            }
        }
    }

    /// Applies one committed write set (used when sealing a block and by the
    /// validator's applier). `Code` writes are ignored here — code bytes are
    /// installed via [`WorldState::set_code`] by the execution layer; the
    /// write-set entry only versions the key for conflict detection.
    pub fn apply_writes(&mut self, writes: &WriteSet) {
        for (key, value) in writes {
            match key {
                AccessKey::Balance(a) => self.set_balance(*a, *value),
                AccessKey::Nonce(a) => {
                    self.set_nonce(*a, value.low_u64());
                }
                AccessKey::Storage(a, slot) => self.set_storage(*a, *slot, *value),
                AccessKey::Code(_) => {}
            }
        }
    }

    /// Number of existing accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Iterates over all accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &AccountState)> {
        self.accounts.iter().map(|(a, acct)| (a, &**acct))
    }

    /// Commits the world into a secure MPT and returns the state root.
    ///
    /// Empty accounts are skipped (EIP-161). Storage tries use
    /// `keccak(slot) → rlp(value)` leaves; the account trie uses
    /// `keccak(address) → rlp(account)`.
    ///
    /// Incremental: only accounts dirtied since the previous call are
    /// re-inserted into the retained tries, and dirty storage tries are
    /// hashed in parallel. Debug builds assert the result against
    /// [`WorldState::rebuild_root`].
    pub fn state_root(&self) -> H256 {
        self.refresh().root
    }

    /// Commits the world into its secure MPT form and returns the state root
    /// together with every hashed trie node — the account trie's plus those
    /// of each non-empty storage trie. Feeding the nodes to a node database
    /// lets [`crate::trie::Trie::from_root`] re-open the account trie and,
    /// via the `storage_root` inside each account body, every storage trie.
    ///
    /// Nodes are emitted once per reference (see
    /// [`crate::trie::Trie::commit_nodes`]), so reference-counting stores
    /// stay balanced across commit and prune. The tries come from the same
    /// incremental memo as [`WorldState::state_root`]: unchanged subtrees
    /// reuse their cached encodings instead of being re-hashed.
    pub fn commit_tries(&self) -> (H256, Vec<(H256, Vec<u8>)>) {
        let commit = self.refresh();
        let mut nodes = Vec::new();
        for storage_trie in commit.storage_tries.values() {
            let (_, storage_nodes) = storage_trie.commit_nodes();
            nodes.extend(storage_nodes);
        }
        let (root, account_nodes) = commit.account_trie.commit_nodes();
        nodes.extend(account_nodes);
        (root, nodes)
    }

    /// Recomputes the state root from scratch, ignoring and not touching the
    /// incremental memo. The oracle the incremental path is checked against
    /// (automatically so in debug builds).
    pub fn rebuild_root(&self) -> H256 {
        let mut account_trie = Trie::new();
        for (addr, acct) in &self.accounts {
            if acct.is_empty() {
                continue;
            }
            let root = storage_root(&acct.storage);
            account_trie.insert(
                keccak256(addr.as_bytes()).as_bytes(),
                account_body(acct, root),
            );
        }
        account_trie.root_hash()
    }

    /// Brings the retained commit up to date with all dirty accounts and
    /// returns it.
    fn refresh(&self) -> Arc<WorldCommit> {
        let mut tracker = self.tracker.lock().unwrap_or_else(PoisonError::into_inner);
        // First commit ever (for this lineage): everything is dirty.
        let (mut commit, dirty) = match tracker.commit.take() {
            Some(prev) => {
                if tracker.dirty.is_empty() {
                    // Nothing changed since the last commit.
                    let out = Arc::clone(&prev);
                    tracker.commit = Some(prev);
                    return out;
                }
                let dirty: Vec<(Address, DirtyAccount)> = tracker.dirty.drain().collect();
                // Unshared after a snapshot recommits? Reuse in place; else
                // clone (cheap — tries share structure).
                let commit = Arc::try_unwrap(prev).unwrap_or_else(|shared| (*shared).clone());
                (commit, dirty)
            }
            None => {
                tracker.dirty.clear();
                let dirty = self
                    .accounts
                    .keys()
                    .map(|addr| (*addr, DirtyAccount::Full))
                    .collect();
                (WorldCommit::default(), dirty)
            }
        };

        let updates = compute_updates(&dirty, &self.accounts, &commit.storage_tries);
        for update in updates {
            match update {
                AccountUpdate::Remove(addr) => {
                    commit
                        .account_trie
                        .remove(keccak256(addr.as_bytes()).as_bytes());
                    commit.storage_tries.remove(&addr);
                }
                AccountUpdate::Upsert(addr, storage_trie, body) => {
                    commit
                        .account_trie
                        .insert(keccak256(addr.as_bytes()).as_bytes(), body);
                    if storage_trie.is_empty() {
                        commit.storage_tries.remove(&addr);
                    } else {
                        commit.storage_tries.insert(addr, storage_trie);
                    }
                }
            }
        }
        commit.root = commit.account_trie.root_hash();
        debug_assert_eq!(
            commit.root,
            self.rebuild_root(),
            "incremental state root diverged from from-scratch rebuild"
        );
        let commit = Arc::new(commit);
        tracker.commit = Some(Arc::clone(&commit));
        commit
    }
}

/// The effect of one dirty account on the account trie.
enum AccountUpdate {
    /// Account is empty or absent: drop it (EIP-161).
    Remove(Address),
    /// Re-insert with this up-to-date storage trie and RLP body.
    Upsert(Address, Trie, Vec<u8>),
}

/// Computes every dirty account's update. The storage-trie hashing dominates,
/// so above a small threshold the work is fanned out across threads (scoped —
/// borrows the maps directly).
fn compute_updates(
    dirty: &[(Address, DirtyAccount)],
    accounts: &HashMap<Address, Arc<AccountState>>,
    prev_tries: &HashMap<Address, Trie>,
) -> Vec<AccountUpdate> {
    /// Below this many dirty accounts, thread spawn overhead outweighs the
    /// hashing it would parallelize.
    const PARALLEL_THRESHOLD: usize = 33;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(dirty.len().div_ceil(8).max(1));
    if dirty.len() < PARALLEL_THRESHOLD || workers < 2 {
        return dirty
            .iter()
            .map(|(addr, dirt)| compute_update(*addr, dirt, accounts, prev_tries))
            .collect();
    }
    let chunk = dirty.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = dirty
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|(addr, dirt)| compute_update(*addr, dirt, accounts, prev_tries))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storage hashing worker panicked"))
            .collect()
    })
}

/// Computes one dirty account's update: patch (or rebuild) its storage trie,
/// hash it, and re-encode the account body.
fn compute_update(
    addr: Address,
    dirt: &DirtyAccount,
    accounts: &HashMap<Address, Arc<AccountState>>,
    prev_tries: &HashMap<Address, Trie>,
) -> AccountUpdate {
    let acct = match accounts.get(&addr) {
        Some(acct) if !acct.is_empty() => acct,
        _ => return AccountUpdate::Remove(addr),
    };
    let storage_trie = match (dirt, prev_tries.get(&addr)) {
        // Precise slot tracking with a retained trie: patch only the dirty
        // slots. A slot now zero/absent is deleted from the trie.
        (DirtyAccount::Slots(slots), Some(prev)) => {
            let mut trie = prev.clone();
            for slot in slots {
                let key = keccak256(slot.as_bytes());
                match acct.storage.get(slot) {
                    Some(value) if !value.is_zero() => {
                        trie.insert(key.as_bytes(), storage_leaf(value));
                    }
                    _ => {
                        trie.remove(key.as_bytes());
                    }
                }
            }
            trie
        }
        // Fully dirty, or no retained trie (storage was empty at the last
        // commit): rebuild. With slot tracking and no retained trie every
        // non-zero slot is itself dirty, so this does no extra work.
        _ => {
            let mut trie = Trie::new();
            for (slot, value) in &acct.storage {
                if value.is_zero() {
                    continue;
                }
                trie.insert(keccak256(slot.as_bytes()).as_bytes(), storage_leaf(value));
            }
            trie
        }
    };
    // Hash here, inside the parallel region — the memo makes the later
    // account-trie pass O(1) per storage root.
    let root = storage_trie.root_hash();
    let body = account_body(acct, root);
    AccountUpdate::Upsert(addr, storage_trie, body)
}

/// RLP leaf for one storage value.
fn storage_leaf(value: &U256) -> Vec<u8> {
    bp_crypto::rlp::encode_bytes(&value.to_be_bytes_trimmed())
}

/// RLP account body with the given storage root.
fn account_body(acct: &AccountState, storage_root: H256) -> Vec<u8> {
    let code_hash = if acct.code.is_empty() {
        empty_code_hash()
    } else {
        keccak256(&acct.code)
    };
    Account {
        nonce: acct.nonce,
        balance: acct.balance,
        storage_root,
        code_hash,
    }
    .rlp_encode()
}

/// Root of one account's storage trie, built from scratch.
pub fn storage_root(storage: &HashMap<H256, U256>) -> H256 {
    let mut trie = Trie::new();
    for (slot, value) in storage {
        if value.is_zero() {
            continue;
        }
        trie.insert(keccak256(slot.as_bytes()).as_bytes(), storage_leaf(value));
    }
    trie.root_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn empty_world_has_empty_root() {
        assert_eq!(WorldState::new().state_root(), trie::empty_root());
    }

    #[test]
    fn reads_of_absent_accounts_are_zero() {
        let w = WorldState::new();
        assert_eq!(w.balance(&addr(1)), U256::ZERO);
        assert_eq!(w.nonce(&addr(1)), 0);
        assert_eq!(w.storage(&addr(1), &H256::ZERO), U256::ZERO);
        assert!(w.code(&addr(1)).is_empty());
    }

    #[test]
    fn state_root_changes_with_content() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(100u64));
        let r1 = w.state_root();
        assert_ne!(r1, trie::empty_root());
        w.set_balance(addr(2), U256::from(50u64));
        let r2 = w.state_root();
        assert_ne!(r1, r2);
        // Same contents built differently produce the same root.
        let mut w2 = WorldState::new();
        w2.set_balance(addr(2), U256::from(50u64));
        w2.set_balance(addr(1), U256::from(100u64));
        assert_eq!(w2.state_root(), r2);
    }

    #[test]
    fn empty_accounts_do_not_affect_root() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(5u64));
        let r = w.state_root();
        // Touch an account without giving it any substance.
        w.account_mut(addr(9));
        assert_eq!(w.state_root(), r);
    }

    #[test]
    fn zero_storage_write_deletes_slot() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        let r_before = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(1), U256::from(9u64));
        let r_with = w.state_root();
        assert_ne!(r_before, r_with);
        w.set_storage(addr(1), H256::from_low_u64(1), U256::ZERO);
        assert_eq!(w.state_root(), r_before);
    }

    #[test]
    fn storage_affects_root_via_account() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        w.set_storage(addr(1), H256::from_low_u64(0), U256::from(77u64));
        let r1 = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(0), U256::from(78u64));
        assert_ne!(w.state_root(), r1);
    }

    #[test]
    fn read_key_dispatch() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(7u64));
        w.set_nonce(addr(1), 3);
        w.set_storage(addr(1), H256::from_low_u64(5), U256::from(9u64));
        w.set_code(addr(2), vec![0x60, 0x00]);
        assert_eq!(w.read_key(&AccessKey::Balance(addr(1))), U256::from(7u64));
        assert_eq!(w.read_key(&AccessKey::Nonce(addr(1))), U256::from(3u64));
        assert_eq!(
            w.read_key(&AccessKey::Storage(addr(1), H256::from_low_u64(5))),
            U256::from(9u64)
        );
        assert_eq!(
            w.read_key(&AccessKey::Code(addr(2))),
            keccak256(&[0x60, 0x00]).to_u256()
        );
        assert_eq!(w.read_key(&AccessKey::Code(addr(3))), U256::ZERO);
    }

    #[test]
    fn apply_writes_matches_direct_mutation() {
        let mut direct = WorldState::new();
        direct.set_balance(addr(1), U256::from(10u64));
        direct.set_nonce(addr(2), 4);
        direct.set_storage(addr(3), H256::from_low_u64(1), U256::from(6u64));

        let mut via_writes = WorldState::new();
        let mut ws: WriteSet = Default::default();
        ws.insert(AccessKey::Balance(addr(1)), U256::from(10u64));
        ws.insert(AccessKey::Nonce(addr(2)), U256::from(4u64));
        ws.insert(
            AccessKey::Storage(addr(3), H256::from_low_u64(1)),
            U256::from(6u64),
        );
        via_writes.apply_writes(&ws);
        assert_eq!(direct.state_root(), via_writes.state_root());
    }

    #[test]
    fn commit_tries_matches_state_root_and_roundtrips() {
        let mut w = WorldState::new();
        for i in 0..40u64 {
            w.set_balance(addr(i), U256::from(1000 + i));
            w.set_nonce(addr(i), i);
            if i % 3 == 0 {
                w.set_storage(addr(i), H256::from_low_u64(i), U256::from(7 * i + 1));
                w.set_storage(addr(i), H256::from_low_u64(i + 1), U256::from(9 * i + 1));
            }
        }
        let (root, nodes) = w.commit_tries();
        assert_eq!(root, w.state_root());
        let db: std::collections::HashMap<H256, Vec<u8>> = nodes.into_iter().collect();
        // The account trie reloads from the emitted nodes…
        let account_trie = Trie::from_root(root, &db).unwrap();
        assert_eq!(account_trie.root_hash(), root);
        // …and every account body's storage trie resolves through them too.
        let mut nonempty_storage = 0;
        for (_, body) in account_trie.iter() {
            let acct = Account::rlp_decode(&body).unwrap();
            let storage = Trie::from_root(acct.storage_root, &db).unwrap();
            assert_eq!(storage.root_hash(), acct.storage_root);
            if acct.storage_root != trie::empty_root() {
                nonempty_storage += 1;
            }
        }
        assert!(
            nonempty_storage > 0,
            "fixture should exercise storage tries"
        );
    }

    #[test]
    fn clone_is_deep_for_storage() {
        let mut w = WorldState::new();
        w.set_storage(addr(1), H256::ZERO, U256::ONE);
        w.set_balance(addr(1), U256::ONE);
        let snap = w.clone();
        w.set_storage(addr(1), H256::ZERO, U256::from(2u64));
        assert_eq!(snap.storage(&addr(1), &H256::ZERO), U256::ONE);
    }

    // ---- incremental-commitment specific coverage ----

    /// Builds a fresh world with the same contents (no memo) for oracle use.
    fn rebuilt(w: &WorldState) -> WorldState {
        let mut fresh = WorldState::new();
        for (a, acct) in w.accounts() {
            let m = fresh.account_mut(*a);
            *m = acct.clone();
        }
        fresh
    }

    #[test]
    fn incremental_root_matches_fresh_build_across_mutations() {
        let mut w = WorldState::new();
        for i in 0..50u64 {
            w.set_balance(addr(i), U256::from(100 + i));
            if i % 4 == 0 {
                w.set_storage(addr(i), H256::from_low_u64(i), U256::from(i + 1));
            }
        }
        // Commit, then mutate a small dirty set repeatedly; every recommit
        // must match a from-scratch world.
        for round in 0..5u64 {
            let _ = w.state_root();
            w.set_balance(addr(round), U256::from(round * 7 + 1));
            w.set_storage(addr(round), H256::from_low_u64(99), U256::from(round + 1));
            w.set_storage(addr(round + 1), H256::from_low_u64(round), U256::ZERO);
            w.set_nonce(addr(49 - round), round);
            assert_eq!(w.state_root(), rebuilt(&w).state_root(), "round {round}");
            assert_eq!(w.state_root(), w.rebuild_root());
        }
    }

    #[test]
    fn account_emptied_after_commit_leaves_root() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(5u64));
        let r_one = w.state_root();
        w.set_balance(addr(2), U256::from(9u64));
        let _ = w.state_root();
        // Empty account 2 again (balance back to zero ⇒ EIP-161 empty); the
        // incremental path must remove it from the retained account trie.
        w.set_balance(addr(2), U256::ZERO);
        assert_eq!(w.state_root(), r_one);
    }

    #[test]
    fn storage_emptied_after_commit_drops_trie() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        let r_plain = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(3), U256::from(4u64));
        let _ = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(3), U256::ZERO);
        assert_eq!(w.state_root(), r_plain);
        // No stale storage nodes may linger in the commit output.
        let (_, nodes) = w.commit_tries();
        let fresh_nodes = rebuilt(&w).commit_tries().1;
        let mut a = nodes;
        let mut b = fresh_nodes;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn account_mut_escape_hatch_is_tracked() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        w.set_storage(addr(1), H256::from_low_u64(1), U256::from(2u64));
        let _ = w.state_root();
        // Mutate the storage map directly, bypassing set_storage.
        w.account_mut(addr(1))
            .storage
            .insert(H256::from_low_u64(7), U256::from(8u64));
        assert_eq!(w.state_root(), w.rebuild_root());
    }

    #[test]
    fn snapshot_diverges_independently() {
        let mut w = WorldState::new();
        for i in 0..20u64 {
            w.set_balance(addr(i), U256::from(i + 1));
        }
        let base_root = w.state_root();
        let mut snap = w.snapshot();
        // Writes on each side are invisible to the other.
        w.set_balance(addr(0), U256::from(777u64));
        snap.set_balance(addr(1), U256::from(888u64));
        assert_eq!(snap.balance(&addr(0)), U256::ONE);
        assert_eq!(w.balance(&addr(1)), U256::from(2u64));
        assert_ne!(w.state_root(), base_root);
        assert_ne!(snap.state_root(), base_root);
        assert_ne!(w.state_root(), snap.state_root());
        assert_eq!(w.state_root(), w.rebuild_root());
        assert_eq!(snap.state_root(), snap.rebuild_root());
        // Reverting the divergent writes re-converges both lineages.
        w.set_balance(addr(0), U256::ONE);
        snap.set_balance(addr(1), U256::from(2u64));
        assert_eq!(w.state_root(), base_root);
        assert_eq!(snap.state_root(), base_root);
    }

    #[test]
    fn incremental_commit_tries_match_fresh_world() {
        let mut w = WorldState::new();
        for i in 0..60u64 {
            w.set_balance(addr(i), U256::from(1 + i));
            w.set_storage(addr(i), H256::from_low_u64(i % 5), U256::from(i + 1));
        }
        let _ = w.commit_tries();
        for i in 0..10u64 {
            w.set_storage(addr(i), H256::from_low_u64(i % 5), U256::from(1000 + i));
            w.set_balance(addr(i + 30), U256::from(2000 + i));
        }
        let (root_inc, mut nodes_inc) = w.commit_tries();
        let (root_fresh, mut nodes_fresh) = rebuilt(&w).commit_tries();
        assert_eq!(root_inc, root_fresh);
        nodes_inc.sort();
        nodes_fresh.sort();
        assert_eq!(nodes_inc, nodes_fresh);
    }

    #[test]
    fn parallel_hashing_path_matches_serial_oracle() {
        // Enough dirty accounts with storage to cross the parallel
        // threshold inside compute_updates.
        let mut w = WorldState::new();
        for i in 0..200u64 {
            w.set_balance(addr(i), U256::from(i + 1));
            for s in 0..4u64 {
                w.set_storage(addr(i), H256::from_low_u64(s), U256::from(i * 10 + s + 1));
            }
        }
        assert_eq!(w.state_root(), w.rebuild_root());
        // Dirty a wide slice after the first commit and recommit.
        for i in 0..100u64 {
            w.set_storage(addr(i), H256::from_low_u64(1), U256::from(5555 + i));
        }
        assert_eq!(w.state_root(), w.rebuild_root());
    }
}
