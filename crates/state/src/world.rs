//! The world state: every account plus its storage, with MPT commitment.
//!
//! `WorldState` is the flat, mutable representation both executors operate
//! on. [`WorldState::state_root`] commits it into the authenticated form — a
//! *secure* Merkle Patricia Trie (keys hashed with keccak, as in Ethereum) of
//! RLP-encoded accounts, each carrying the root of its own storage trie.
//!
//! Commitment is **incremental**: every mutation records which account (and
//! which storage slots) it dirtied, and the tries produced by the previous
//! commit are retained. `state_root()` / `commit_tries()` then re-insert only
//! the dirty entries — removing deleted slots and emptied accounts — so the
//! per-block cost is O(dirty keys · log n) instead of O(total state). Dirty
//! accounts' storage tries are hashed in parallel. In debug builds every
//! incremental root is cross-checked against a from-scratch rebuild
//! ([`WorldState::rebuild_root`]).
//!
//! Accounts are held behind [`Arc`] with clone-on-write semantics, so
//! cloning a `WorldState` ([`WorldState::snapshot`]) is O(accounts) pointer
//! bumps and subsequent writes copy only the touched accounts — the
//! validator pipeline takes one such snapshot per block.
//!
//! A world can also be **layered** over a [`StateReader`] base
//! ([`WorldState::layered`] / [`WorldState::rebase`]): the account map then
//! holds only the *overlay* — accounts touched since the base — and reads
//! that miss it fall through to the base. Writes materialize the account
//! body in the overlay; storage writes record zero values as explicit
//! tombstones so a cleared slot shadows the base instead of re-exposing it.
//! Commitment merges overlay over base per dirty account, so the
//! incremental-root machinery works identically whether state is resident
//! or base-backed.

use std::collections::HashSet;

// Hot maps (accounts, per-account storage, dirty tracking) are Fx-hashed:
// keys are fixed-size hashes/addresses, and SipHash showed up as the top
// per-transaction cost in the EVM bench.
use bp_types::FxHashMap as HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use bp_crypto::keccak256;
use bp_types::{AccessKey, Address, WriteSet, H256, U256};

use crate::account::{empty_code_hash, Account};
use crate::reader::{BaseAccount, StateDelta, StateReader};
use crate::trie::{self, Trie};

/// One account's in-memory state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccountState {
    /// Transaction/creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Contract storage (absent slots are zero).
    pub storage: HashMap<H256, U256>,
    /// Contract code (empty for EOAs). `Arc` so snapshots share it.
    pub code: Arc<Vec<u8>>,
    /// `keccak256(code)` as a word, `U256::ZERO` for empty code — the value
    /// an [`AccessKey::Code`] read resolves to. Derived data, kept eagerly in
    /// sync with `code` so the per-transaction code-identity read in the EVM
    /// host does not recompute a keccak per call frame (~½ µs, formerly the
    /// single largest fixed cost of a contract call). Maintained by
    /// [`AccountState::install_code`]; anything that assigns `code` directly
    /// must update it the same way.
    pub code_hash: U256,
}

/// The word an [`AccessKey::Code`] read resolves to for the given bytecode.
///
/// Empty code reads as `U256::ZERO` (distinct from the *trie* encoding,
/// which uses `keccak256("")` — see [`crate::account::empty_code_hash`]).
pub fn code_read_word(code: &[u8]) -> U256 {
    if code.is_empty() {
        U256::ZERO
    } else {
        keccak256(code).to_u256()
    }
}

impl AccountState {
    /// True iff this account would not be persisted (EIP-161 emptiness).
    pub fn is_empty(&self) -> bool {
        self.nonce == 0 && self.balance.is_zero() && self.code.is_empty() && self.storage.is_empty()
    }

    /// Installs `code`, keeping the cached [`AccountState::code_hash`] in
    /// sync.
    pub fn install_code(&mut self, code: Arc<Vec<u8>>) {
        self.code_hash = code_read_word(&code);
        self.code = code;
    }
}

/// What a mutation dirtied within one account since the last commit.
#[derive(Clone, Debug)]
enum DirtyAccount {
    /// The account body and/or the listed storage slots changed; every other
    /// slot is untouched, so the retained storage trie can be patched.
    Slots(HashSet<H256>),
    /// The account was mutated through an escape hatch
    /// ([`WorldState::account_mut`]) that may have rewritten anything —
    /// rebuild its storage trie from scratch.
    Full,
}

/// The tries produced by the last commit, reused as the base for the next.
#[derive(Clone, Debug)]
struct WorldCommit {
    root: H256,
    account_trie: Trie,
    /// Storage tries of accounts with non-empty storage. Tries are
    /// structurally shared with prior commits, so cloning this map is cheap.
    storage_tries: HashMap<Address, Trie>,
}

impl Default for WorldCommit {
    fn default() -> Self {
        WorldCommit {
            root: trie::empty_root(),
            account_trie: Trie::new(),
            storage_tries: HashMap::default(),
        }
    }
}

/// Dirty bookkeeping between commits. Lives behind a mutex only so the
/// read-side `state_root(&self)` can refresh the memo; all mutation paths
/// take `&mut self` and use the lock-free `get_mut`.
#[derive(Debug, Default)]
struct CommitTracker {
    /// Accounts touched since the last commit. Absent entirely ⇒ the last
    /// commit is current.
    dirty: HashMap<Address, DirtyAccount>,
    /// The last commit, shared O(1) across clones until one of them
    /// recommits.
    commit: Option<Arc<WorldCommit>>,
}

/// The mutable world state of the chain.
#[derive(Debug, Default)]
pub struct WorldState {
    /// Resident accounts. For a base-backed world this is the overlay:
    /// only accounts touched since [`WorldState::layered`] /
    /// [`WorldState::rebase`] appear here.
    accounts: HashMap<Address, Arc<AccountState>>,
    /// Base state that reads fall through to when `accounts` misses.
    base: Option<Arc<dyn StateReader>>,
    tracker: Mutex<CommitTracker>,
    /// Worker cap for parallel commitment (storage-trie hashing and the
    /// sharded account-trie batch apply). `0` ⇒ all available cores.
    commit_threads: usize,
}

impl Clone for WorldState {
    /// Copy-on-write: O(overlay accounts) refcount bumps. Account bodies,
    /// storage maps, code blobs, the base handle, and the retained commit
    /// tries are all shared until either side writes.
    fn clone(&self) -> Self {
        let tracker = self.tracker.lock().unwrap_or_else(PoisonError::into_inner);
        WorldState {
            accounts: self.accounts.clone(),
            base: self.base.clone(),
            tracker: Mutex::new(CommitTracker {
                dirty: tracker.dirty.clone(),
                commit: tracker.commit.clone(),
            }),
            commit_threads: self.commit_threads,
        }
    }
}

impl PartialEq for WorldState {
    /// Equality is by resident account contents only — commit memos are
    /// derived data, and base-backed worlds compare by overlay.
    fn eq(&self, other: &Self) -> bool {
        self.accounts == other.accounts
    }
}

impl WorldState {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty overlay stacked on `base`, whose committed account trie is
    /// `account_trie` (the trie whose root the base answers reads for).
    ///
    /// The trie seeds the incremental-commit memo so the first recommit
    /// patches it instead of rebuilding from the (possibly huge) base.
    /// Storage tries are not seeded: the first account whose storage is
    /// touched rebuilds its trie from the base's flat entries, after which
    /// it is retained and patched like any other.
    pub fn layered(base: Arc<dyn StateReader>, account_trie: Trie) -> Self {
        WorldState {
            accounts: HashMap::default(),
            base: Some(base),
            tracker: Mutex::new(CommitTracker {
                dirty: HashMap::default(),
                commit: Some(Arc::new(WorldCommit {
                    root: account_trie.root_hash(),
                    account_trie,
                    storage_tries: HashMap::default(),
                })),
            }),
            commit_threads: 0,
        }
    }

    /// Caps the worker threads used by parallel commitment ([`state_root`] /
    /// [`commit_tries`]): storage-trie hashing and the sharded account-trie
    /// apply both fan out to at most this many scoped workers. `0` (the
    /// default) means all available cores; `1` forces the serial path.
    /// The cap survives [`snapshot`]/`clone` so a pipeline configures it
    /// once on the genesis world.
    ///
    /// [`state_root`]: WorldState::state_root
    /// [`commit_tries`]: WorldState::commit_tries
    /// [`snapshot`]: WorldState::snapshot
    pub fn set_commit_threads(&mut self, threads: usize) {
        self.commit_threads = threads;
    }

    /// The configured parallel-commit worker cap (`0` = all cores).
    pub fn commit_threads(&self) -> usize {
        self.commit_threads
    }

    /// Converts a resident world into a base-backed one: commits (so the
    /// memo is primed), then drops every resident account in favor of reads
    /// through `base` — which must answer exactly this world's committed
    /// state (e.g. a flat base seeded with [`WorldState::full_delta`]).
    ///
    /// The commit memo — account trie *and* storage tries — is retained in
    /// full: [`WorldState::commit_tries`] must keep emitting the complete
    /// per-reference node list (reference-counting stores prune by the
    /// mirror walk), and untouched accounts' storage tries can only come
    /// from the memo once their flat values live behind the base. Only the
    /// resident account bodies and storage values are shed.
    pub fn rebase(&mut self, base: Arc<dyn StateReader>) {
        let commit = self.refresh();
        self.accounts = HashMap::default();
        self.base = Some(base);
        let tracker = self
            .tracker
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        tracker.dirty.clear();
        tracker.commit = Some(commit);
    }

    /// The base this world reads through, if any.
    pub fn base(&self) -> Option<&Arc<dyn StateReader>> {
        self.base.as_ref()
    }

    /// A copy-on-write snapshot: the validator pipeline's per-block base.
    /// Alias of `clone()`, named for intent — the copy is O(accounts)
    /// pointer bumps, and writes to either side copy only touched accounts.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Read access to a *resident* (overlay) account, if present. For
    /// base-backed worlds this does not consult the base — use the typed
    /// getters for semantic reads.
    pub fn account(&self, addr: &Address) -> Option<&AccountState> {
        self.accounts.get(addr).map(|a| &**a)
    }

    /// Mutable access, creating (and, for base-backed worlds,
    /// materializing) the account if needed.
    ///
    /// This hands out the raw account — including its storage map — so the
    /// account is conservatively marked fully dirty and its storage trie is
    /// rebuilt at the next commit. Prefer the typed setters, which track
    /// exactly what changed.
    pub fn account_mut(&mut self, addr: Address) -> &mut AccountState {
        self.tracker
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .dirty
            .insert(addr, DirtyAccount::Full);
        materialize(&mut self.accounts, self.base.as_deref(), addr)
    }

    /// Marks the account body (balance/nonce/code) dirty without touching
    /// storage slots, and returns the account for mutation.
    fn body_mut(&mut self, addr: Address) -> &mut AccountState {
        self.tracker
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .dirty
            .entry(addr)
            .or_insert_with(|| DirtyAccount::Slots(HashSet::new()));
        materialize(&mut self.accounts, self.base.as_deref(), addr)
    }

    /// The balance of `addr` (zero if absent).
    pub fn balance(&self, addr: &Address) -> U256 {
        match self.accounts.get(addr) {
            Some(a) => a.balance,
            None => self
                .base_account(addr)
                .map(|a| a.balance)
                .unwrap_or(U256::ZERO),
        }
    }

    /// The nonce of `addr` (zero if absent).
    pub fn nonce(&self, addr: &Address) -> u64 {
        match self.accounts.get(addr) {
            Some(a) => a.nonce,
            None => self.base_account(addr).map(|a| a.nonce).unwrap_or(0),
        }
    }

    /// The storage slot `key` of `addr` (zero if absent). An overlay entry
    /// — including a zero tombstone — shadows the base.
    pub fn storage(&self, addr: &Address, key: &H256) -> U256 {
        if let Some(acct) = self.accounts.get(addr) {
            if let Some(value) = acct.storage.get(key) {
                return *value;
            }
        }
        match &self.base {
            Some(base) => base.base_storage(addr, key).unwrap_or(U256::ZERO),
            None => U256::ZERO,
        }
    }

    /// The code of `addr` (empty if absent).
    pub fn code(&self, addr: &Address) -> Arc<Vec<u8>> {
        match self.accounts.get(addr) {
            Some(a) => Arc::clone(&a.code),
            None => self.base_account(addr).map(|a| a.code).unwrap_or_default(),
        }
    }

    /// Base body lookup (absent without a base).
    fn base_account(&self, addr: &Address) -> Option<BaseAccount> {
        self.base.as_ref().and_then(|b| b.base_account(addr))
    }

    /// Sets a balance, creating the account if needed.
    pub fn set_balance(&mut self, addr: Address, balance: U256) {
        self.body_mut(addr).balance = balance;
    }

    /// Sets a nonce.
    pub fn set_nonce(&mut self, addr: Address, nonce: u64) {
        self.body_mut(addr).nonce = nonce;
    }

    /// Sets a storage slot. Writing zero deletes the slot, as in Ethereum —
    /// except over a base, where the zero is kept as an explicit tombstone
    /// so the overlay shadows the base's value instead of re-exposing it.
    pub fn set_storage(&mut self, addr: Address, key: H256, value: U256) {
        let tracker = self
            .tracker
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        match tracker
            .dirty
            .entry(addr)
            .or_insert_with(|| DirtyAccount::Slots(HashSet::new()))
        {
            DirtyAccount::Slots(slots) => {
                slots.insert(key);
            }
            DirtyAccount::Full => {}
        }
        let acct = materialize(&mut self.accounts, self.base.as_deref(), addr);
        if value.is_zero() && self.base.is_none() {
            acct.storage.remove(&key);
        } else {
            acct.storage.insert(key, value);
        }
    }

    /// Installs contract code.
    pub fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        self.body_mut(addr).install_code(Arc::new(code));
    }

    /// Reads the value behind an [`AccessKey`] as a 256-bit word (code reads
    /// return the code hash, which is what conflict detection needs).
    pub fn read_key(&self, key: &AccessKey) -> U256 {
        match key {
            AccessKey::Balance(a) => self.balance(a),
            AccessKey::Nonce(a) => U256::from(self.nonce(a)),
            AccessKey::Storage(a, slot) => self.storage(a, slot),
            // Resident accounts answer from the cached hash; only the
            // base fall-through (cold read of an untouched account) still
            // hashes the blob.
            AccessKey::Code(a) => match self.accounts.get(a) {
                Some(acct) => acct.code_hash,
                None => match self.base_account(a) {
                    Some(b) => code_read_word(&b.code),
                    None => U256::ZERO,
                },
            },
        }
    }

    /// [`WorldState::read_key`] with a caller-held one-account memo.
    ///
    /// A transaction's reads cluster on two or three accounts (sender,
    /// callee, coinbase), and the account-map probe — a hash plus two
    /// dependent cache misses on a mainnet-sized map — repeats for every
    /// balance, nonce, storage and code-identity read. The memo pins the
    /// last resident account touched so consecutive reads of the same
    /// account skip the probe. The `&Self` borrow held by the memo entry
    /// keeps the world immutable for the memo's whole lifetime, so entries
    /// can never go stale.
    pub fn read_key_memo<'a>(
        &'a self,
        key: &AccessKey,
        memo: &mut Option<(Address, &'a AccountState)>,
    ) -> U256 {
        let addr = key.address();
        let acct: Option<&'a AccountState> = match memo {
            Some((cached, acct)) if *cached == addr => Some(*acct),
            _ => {
                let found = self.accounts.get(&addr).map(|arc| &**arc);
                if let Some(acct) = found {
                    *memo = Some((addr, acct));
                }
                found
            }
        };
        let Some(acct) = acct else {
            // Not resident: the base fall-through path, identical to
            // `read_key` (which also handles the no-base zero default).
            return self.read_key(key);
        };
        match key {
            AccessKey::Balance(_) => acct.balance,
            AccessKey::Nonce(_) => U256::from(acct.nonce),
            // An overlay entry — including a zero tombstone — shadows the
            // base, exactly as in `storage`.
            AccessKey::Storage(_, slot) => match acct.storage.get(slot) {
                Some(value) => *value,
                None => match &self.base {
                    Some(base) => base.base_storage(&addr, slot).unwrap_or(U256::ZERO),
                    None => U256::ZERO,
                },
            },
            AccessKey::Code(_) => acct.code_hash,
        }
    }

    /// Applies one committed write set (used when sealing a block and by the
    /// validator's applier). `Code` writes are ignored here — code bytes are
    /// installed via [`WorldState::set_code`] by the execution layer; the
    /// write-set entry only versions the key for conflict detection.
    pub fn apply_writes(&mut self, writes: &WriteSet) {
        for (key, value) in writes {
            match key {
                AccessKey::Balance(a) => self.set_balance(*a, *value),
                AccessKey::Nonce(a) => {
                    self.set_nonce(*a, value.low_u64());
                }
                AccessKey::Storage(a, slot) => self.set_storage(*a, *slot, *value),
                AccessKey::Code(_) => {}
            }
        }
    }

    /// Number of existing accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Iterates over all accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &AccountState)> {
        self.accounts.iter().map(|(a, acct)| (a, &**acct))
    }

    /// Commits the world into a secure MPT and returns the state root.
    ///
    /// Empty accounts are skipped (EIP-161). Storage tries use
    /// `keccak(slot) → rlp(value)` leaves; the account trie uses
    /// `keccak(address) → rlp(account)`.
    ///
    /// Incremental: only accounts dirtied since the previous call are
    /// re-inserted into the retained tries, and dirty storage tries are
    /// hashed in parallel. Debug builds assert the result against
    /// [`WorldState::rebuild_root`].
    pub fn state_root(&self) -> H256 {
        self.refresh().root
    }

    /// Commits the world into its secure MPT form and returns the state root
    /// together with every hashed trie node — the account trie's plus those
    /// of each non-empty storage trie. Feeding the nodes to a node database
    /// lets [`crate::trie::Trie::from_root`] re-open the account trie and,
    /// via the `storage_root` inside each account body, every storage trie.
    ///
    /// Nodes are emitted once per reference (see
    /// [`crate::trie::Trie::commit_nodes`]), so reference-counting stores
    /// stay balanced across commit and prune. The tries come from the same
    /// incremental memo as [`WorldState::state_root`]: unchanged subtrees
    /// reuse their cached encodings instead of being re-hashed.
    pub fn commit_tries(&self) -> (H256, Vec<(H256, Vec<u8>)>) {
        let commit = self.refresh();
        let mut nodes = Vec::new();
        for storage_trie in commit.storage_tries.values() {
            let (_, storage_nodes) = storage_trie.commit_nodes();
            nodes.extend(storage_nodes);
        }
        let (root, account_nodes) = commit.account_trie.commit_nodes();
        nodes.extend(account_nodes);
        (root, nodes)
    }

    /// Recomputes the state root from scratch, ignoring and not touching the
    /// incremental memo. The oracle the incremental path is checked against
    /// (automatically so in debug builds). For base-backed worlds this
    /// enumerates the entire base — debug/test use only.
    pub fn rebuild_root(&self) -> H256 {
        let mut account_trie = Trie::new();
        let mut addrs: HashSet<Address> = self.accounts.keys().copied().collect();
        if let Some(base) = &self.base {
            addrs.extend(base.base_accounts());
        }
        for addr in addrs {
            let (acct, merged) = self.effective_account(&addr);
            if acct.nonce == 0
                && acct.balance.is_zero()
                && acct.code.is_empty()
                && merged.is_empty()
            {
                continue;
            }
            let root = storage_root(&merged);
            account_trie.insert(
                keccak256(addr.as_bytes()).as_bytes(),
                account_body(&acct, root),
            );
        }
        account_trie.root_hash()
    }

    /// The effective body and merged (base ∪ overlay, zeros dropped) storage
    /// of `addr`. From-scratch oracle helper — not a fast path.
    fn effective_account(&self, addr: &Address) -> (AccountState, HashMap<H256, U256>) {
        let mut merged: HashMap<H256, U256> = match &self.base {
            Some(base) => base.base_storage_entries(addr).into_iter().collect(),
            None => HashMap::default(),
        };
        let body = match self.accounts.get(addr) {
            Some(acct) => {
                for (slot, value) in &acct.storage {
                    if value.is_zero() {
                        merged.remove(slot);
                    } else {
                        merged.insert(*slot, *value);
                    }
                }
                (**acct).clone()
            }
            None => match self.base_account(addr) {
                Some(b) => AccountState {
                    nonce: b.nonce,
                    balance: b.balance,
                    storage: HashMap::default(),
                    code_hash: code_read_word(&b.code),
                    code: b.code,
                },
                None => AccountState::default(),
            },
        };
        (body, merged)
    }

    /// The net effect of this world on its base, restricted to the given
    /// touched keys — what a snapshot diff layer stores for the block that
    /// produced this state. Values are read post-state: a zeroed slot or an
    /// emptied account body becomes a `None` (delete) entry.
    ///
    /// Any body key (balance/nonce/code) captures the whole body, so the
    /// delta is insensitive to which body field the write set named.
    pub fn delta_for_keys<'a, I>(&self, keys: I) -> StateDelta
    where
        I: IntoIterator<Item = &'a AccessKey>,
    {
        let mut delta = StateDelta::default();
        for key in keys {
            match key {
                AccessKey::Storage(addr, slot) => {
                    let value = self.storage(addr, slot);
                    delta
                        .storage
                        .entry(*addr)
                        .or_default()
                        .insert(*slot, (!value.is_zero()).then_some(value));
                }
                _ => {
                    let addr = key.address();
                    let body = BaseAccount {
                        nonce: self.nonce(&addr),
                        balance: self.balance(&addr),
                        code: self.code(&addr),
                    };
                    delta
                        .accounts
                        .insert(addr, (!body.is_empty()).then_some(body));
                }
            }
        }
        delta
    }

    /// The whole resident world as a delta over an empty base — used to
    /// seed a flat base from a genesis world.
    pub fn full_delta(&self) -> StateDelta {
        let mut delta = StateDelta::default();
        for (addr, acct) in &self.accounts {
            let body = BaseAccount {
                nonce: acct.nonce,
                balance: acct.balance,
                code: Arc::clone(&acct.code),
            };
            if !body.is_empty() {
                delta.accounts.insert(*addr, Some(body));
            }
            let slots: std::collections::HashMap<H256, Option<U256>> = acct
                .storage
                .iter()
                .filter(|(_, v)| !v.is_zero())
                .map(|(s, v)| (*s, Some(*v)))
                .collect();
            if !slots.is_empty() {
                delta.storage.insert(*addr, slots);
            }
        }
        delta
    }

    /// Brings the retained commit up to date with all dirty accounts and
    /// returns it.
    fn refresh(&self) -> Arc<WorldCommit> {
        let mut tracker = self.tracker.lock().unwrap_or_else(PoisonError::into_inner);
        // First commit ever (for this lineage): everything is dirty.
        let (mut commit, dirty) = match tracker.commit.take() {
            Some(prev) => {
                if tracker.dirty.is_empty() {
                    // Nothing changed since the last commit.
                    let out = Arc::clone(&prev);
                    tracker.commit = Some(prev);
                    return out;
                }
                let dirty: Vec<(Address, DirtyAccount)> = tracker.dirty.drain().collect();
                // Unshared after a snapshot recommits? Reuse in place; else
                // clone (cheap — tries share structure).
                let commit = Arc::try_unwrap(prev).unwrap_or_else(|shared| (*shared).clone());
                (commit, dirty)
            }
            None => {
                tracker.dirty.clear();
                let mut all: HashMap<Address, DirtyAccount> = self
                    .accounts
                    .keys()
                    .map(|addr| (*addr, DirtyAccount::Full))
                    .collect();
                if let Some(base) = &self.base {
                    for addr in base.base_accounts() {
                        all.entry(addr).or_insert(DirtyAccount::Full);
                    }
                }
                (WorldCommit::default(), all.into_iter().collect())
            }
        };

        let updates = compute_updates(
            &dirty,
            &self.accounts,
            &commit.storage_tries,
            self.base.as_deref(),
            self.commit_threads,
        );
        // Fold the per-account updates into a single batch so the account
        // trie can shard them by path prefix and hash the touched subtrees
        // in parallel (`Trie::apply_batch` is exact: same structure, same
        // node set, same root as the one-by-one loop).
        let mut batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::with_capacity(updates.len());
        for update in updates {
            match update {
                AccountUpdate::Remove(addr) => {
                    batch.push((keccak256(addr.as_bytes()).as_bytes().to_vec(), None));
                    commit.storage_tries.remove(&addr);
                }
                AccountUpdate::Upsert(addr, storage_trie, body) => {
                    batch.push((keccak256(addr.as_bytes()).as_bytes().to_vec(), Some(body)));
                    if storage_trie.is_empty() {
                        commit.storage_tries.remove(&addr);
                    } else {
                        commit.storage_tries.insert(addr, storage_trie);
                    }
                }
            }
        }
        let threads = effective_threads(self.commit_threads, batch.len());
        commit.account_trie.apply_batch(batch, threads);
        commit.root = commit.account_trie.root_hash();
        debug_assert_eq!(
            commit.root,
            self.rebuild_root(),
            "incremental state root diverged from from-scratch rebuild"
        );
        let commit = Arc::new(commit);
        tracker.commit = Some(Arc::clone(&commit));
        commit
    }
}

/// Overlay entry for `addr`, creating it if needed — seeded from the base's
/// body when one exists, so the overlay body is authoritative from the first
/// write on. Storage is *not* copied: overlay maps hold touched slots only.
fn materialize<'a>(
    accounts: &'a mut HashMap<Address, Arc<AccountState>>,
    base: Option<&dyn StateReader>,
    addr: Address,
) -> &'a mut AccountState {
    let entry = accounts.entry(addr).or_insert_with(|| {
        let seeded = base
            .and_then(|b| b.base_account(&addr))
            .map(|b| AccountState {
                nonce: b.nonce,
                balance: b.balance,
                storage: HashMap::default(),
                code_hash: code_read_word(&b.code),
                code: b.code,
            })
            .unwrap_or_default();
        Arc::new(seeded)
    });
    Arc::make_mut(entry)
}

/// Resolves a configured worker cap (`0` = auto) against the machine and the
/// batch at hand.
fn effective_threads(commit_threads: usize, items: usize) -> usize {
    let cap = if commit_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        commit_threads
    };
    cap.min(items.max(1))
}

/// The effect of one dirty account on the account trie.
enum AccountUpdate {
    /// Account is empty or absent: drop it (EIP-161).
    Remove(Address),
    /// Re-insert with this up-to-date storage trie and RLP body.
    Upsert(Address, Trie, Vec<u8>),
}

/// Computes every dirty account's update. The storage-trie hashing dominates,
/// so above a small threshold the work is fanned out across threads (scoped —
/// borrows the maps directly).
fn compute_updates(
    dirty: &[(Address, DirtyAccount)],
    accounts: &HashMap<Address, Arc<AccountState>>,
    prev_tries: &HashMap<Address, Trie>,
    base: Option<&dyn StateReader>,
    commit_threads: usize,
) -> Vec<AccountUpdate> {
    /// Below this many dirty accounts, thread spawn overhead outweighs the
    /// hashing it would parallelize.
    const PARALLEL_THRESHOLD: usize = 33;
    let workers =
        effective_threads(commit_threads, dirty.len()).min(dirty.len().div_ceil(8).max(1));
    if dirty.len() < PARALLEL_THRESHOLD || workers < 2 {
        return dirty
            .iter()
            .map(|(addr, dirt)| compute_update(*addr, dirt, accounts, prev_tries, base))
            .collect();
    }
    let chunk = dirty.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = dirty
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|(addr, dirt)| compute_update(*addr, dirt, accounts, prev_tries, base))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storage hashing worker panicked"))
            .collect()
    })
}

/// Computes one dirty account's update: patch (or rebuild) its storage trie,
/// hash it, and re-encode the account body.
///
/// With a base, the overlay account's body is authoritative (materialized on
/// first write), while its storage map holds only the touched slots: the
/// patch path falls through to the base per dirty slot, and the rebuild path
/// merges overlay entries over the base's flat entries. An account is
/// dropped (EIP-161) iff its body is empty *and* its merged storage trie is.
fn compute_update(
    addr: Address,
    dirt: &DirtyAccount,
    accounts: &HashMap<Address, Arc<AccountState>>,
    prev_tries: &HashMap<Address, Trie>,
    base: Option<&dyn StateReader>,
) -> AccountUpdate {
    let overlay = accounts.get(&addr);
    if base.is_none() {
        match overlay {
            Some(acct) if !acct.is_empty() => {}
            _ => return AccountUpdate::Remove(addr),
        }
    }
    let storage_trie = match (dirt, prev_tries.get(&addr), overlay) {
        // Precise slot tracking with a retained trie: patch only the dirty
        // slots. A slot now zero/absent is deleted from the trie; a dirty
        // slot missing from the overlay falls through to the base.
        (DirtyAccount::Slots(slots), Some(prev), Some(acct)) => {
            let mut trie = prev.clone();
            for slot in slots {
                let key = keccak256(slot.as_bytes());
                let value = acct
                    .storage
                    .get(slot)
                    .copied()
                    .or_else(|| base.and_then(|b| b.base_storage(&addr, slot)))
                    .unwrap_or(U256::ZERO);
                if value.is_zero() {
                    trie.remove(key.as_bytes());
                } else {
                    trie.insert(key.as_bytes(), storage_leaf(&value));
                }
            }
            trie
        }
        // Fully dirty, or no retained trie (first touch since the base, or
        // storage was empty at the last commit): rebuild from the base's
        // flat entries with the overlay's merged on top.
        _ => {
            let mut merged: HashMap<H256, U256> = match base {
                Some(b) => b.base_storage_entries(&addr).into_iter().collect(),
                None => HashMap::default(),
            };
            if let Some(acct) = overlay {
                for (slot, value) in &acct.storage {
                    if value.is_zero() {
                        merged.remove(slot);
                    } else {
                        merged.insert(*slot, *value);
                    }
                }
            }
            let mut trie = Trie::new();
            for (slot, value) in &merged {
                trie.insert(keccak256(slot.as_bytes()).as_bytes(), storage_leaf(value));
            }
            trie
        }
    };
    // Resolve the effective body: the overlay's if materialized, else the
    // base's (reachable when a first commit enumerates base accounts).
    let (nonce, balance, code) = match overlay {
        Some(acct) => (acct.nonce, acct.balance, Arc::clone(&acct.code)),
        None => match base.and_then(|b| b.base_account(&addr)) {
            Some(b) => (b.nonce, b.balance, b.code),
            None => (0, U256::ZERO, Arc::new(Vec::new())),
        },
    };
    if nonce == 0 && balance.is_zero() && code.is_empty() && storage_trie.is_empty() {
        return AccountUpdate::Remove(addr);
    }
    // Hash here, inside the parallel region — the memo makes the later
    // account-trie pass O(1) per storage root.
    let root = storage_trie.root_hash();
    let body = account_body_parts(nonce, balance, &code, root);
    AccountUpdate::Upsert(addr, storage_trie, body)
}

/// RLP leaf for one storage value.
fn storage_leaf(value: &U256) -> Vec<u8> {
    bp_crypto::rlp::encode_bytes(&value.to_be_bytes_trimmed())
}

/// RLP account body with the given storage root.
fn account_body(acct: &AccountState, storage_root: H256) -> Vec<u8> {
    account_body_parts(acct.nonce, acct.balance, &acct.code, storage_root)
}

/// RLP account body from its parts.
fn account_body_parts(nonce: u64, balance: U256, code: &[u8], storage_root: H256) -> Vec<u8> {
    let code_hash = if code.is_empty() {
        empty_code_hash()
    } else {
        keccak256(code)
    };
    Account {
        nonce,
        balance,
        storage_root,
        code_hash,
    }
    .rlp_encode()
}

/// Root of one account's storage trie, built from scratch.
pub fn storage_root(storage: &HashMap<H256, U256>) -> H256 {
    let mut trie = Trie::new();
    for (slot, value) in storage {
        if value.is_zero() {
            continue;
        }
        trie.insert(keccak256(slot.as_bytes()).as_bytes(), storage_leaf(value));
    }
    trie.root_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn empty_world_has_empty_root() {
        assert_eq!(WorldState::new().state_root(), trie::empty_root());
    }

    #[test]
    fn reads_of_absent_accounts_are_zero() {
        let w = WorldState::new();
        assert_eq!(w.balance(&addr(1)), U256::ZERO);
        assert_eq!(w.nonce(&addr(1)), 0);
        assert_eq!(w.storage(&addr(1), &H256::ZERO), U256::ZERO);
        assert!(w.code(&addr(1)).is_empty());
    }

    #[test]
    fn state_root_changes_with_content() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(100u64));
        let r1 = w.state_root();
        assert_ne!(r1, trie::empty_root());
        w.set_balance(addr(2), U256::from(50u64));
        let r2 = w.state_root();
        assert_ne!(r1, r2);
        // Same contents built differently produce the same root.
        let mut w2 = WorldState::new();
        w2.set_balance(addr(2), U256::from(50u64));
        w2.set_balance(addr(1), U256::from(100u64));
        assert_eq!(w2.state_root(), r2);
    }

    #[test]
    fn empty_accounts_do_not_affect_root() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(5u64));
        let r = w.state_root();
        // Touch an account without giving it any substance.
        w.account_mut(addr(9));
        assert_eq!(w.state_root(), r);
    }

    #[test]
    fn zero_storage_write_deletes_slot() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        let r_before = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(1), U256::from(9u64));
        let r_with = w.state_root();
        assert_ne!(r_before, r_with);
        w.set_storage(addr(1), H256::from_low_u64(1), U256::ZERO);
        assert_eq!(w.state_root(), r_before);
    }

    #[test]
    fn storage_affects_root_via_account() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        w.set_storage(addr(1), H256::from_low_u64(0), U256::from(77u64));
        let r1 = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(0), U256::from(78u64));
        assert_ne!(w.state_root(), r1);
    }

    #[test]
    fn read_key_dispatch() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(7u64));
        w.set_nonce(addr(1), 3);
        w.set_storage(addr(1), H256::from_low_u64(5), U256::from(9u64));
        w.set_code(addr(2), vec![0x60, 0x00]);
        assert_eq!(w.read_key(&AccessKey::Balance(addr(1))), U256::from(7u64));
        assert_eq!(w.read_key(&AccessKey::Nonce(addr(1))), U256::from(3u64));
        assert_eq!(
            w.read_key(&AccessKey::Storage(addr(1), H256::from_low_u64(5))),
            U256::from(9u64)
        );
        assert_eq!(
            w.read_key(&AccessKey::Code(addr(2))),
            keccak256(&[0x60, 0x00]).to_u256()
        );
        assert_eq!(w.read_key(&AccessKey::Code(addr(3))), U256::ZERO);
    }

    #[test]
    fn apply_writes_matches_direct_mutation() {
        let mut direct = WorldState::new();
        direct.set_balance(addr(1), U256::from(10u64));
        direct.set_nonce(addr(2), 4);
        direct.set_storage(addr(3), H256::from_low_u64(1), U256::from(6u64));

        let mut via_writes = WorldState::new();
        let mut ws: WriteSet = Default::default();
        ws.insert(AccessKey::Balance(addr(1)), U256::from(10u64));
        ws.insert(AccessKey::Nonce(addr(2)), U256::from(4u64));
        ws.insert(
            AccessKey::Storage(addr(3), H256::from_low_u64(1)),
            U256::from(6u64),
        );
        via_writes.apply_writes(&ws);
        assert_eq!(direct.state_root(), via_writes.state_root());
    }

    #[test]
    fn commit_tries_matches_state_root_and_roundtrips() {
        let mut w = WorldState::new();
        for i in 0..40u64 {
            w.set_balance(addr(i), U256::from(1000 + i));
            w.set_nonce(addr(i), i);
            if i % 3 == 0 {
                w.set_storage(addr(i), H256::from_low_u64(i), U256::from(7 * i + 1));
                w.set_storage(addr(i), H256::from_low_u64(i + 1), U256::from(9 * i + 1));
            }
        }
        let (root, nodes) = w.commit_tries();
        assert_eq!(root, w.state_root());
        let db: std::collections::HashMap<H256, Vec<u8>> = nodes.into_iter().collect();
        // The account trie reloads from the emitted nodes…
        let account_trie = Trie::from_root(root, &db).unwrap();
        assert_eq!(account_trie.root_hash(), root);
        // …and every account body's storage trie resolves through them too.
        let mut nonempty_storage = 0;
        for (_, body) in account_trie.iter() {
            let acct = Account::rlp_decode(&body).unwrap();
            let storage = Trie::from_root(acct.storage_root, &db).unwrap();
            assert_eq!(storage.root_hash(), acct.storage_root);
            if acct.storage_root != trie::empty_root() {
                nonempty_storage += 1;
            }
        }
        assert!(
            nonempty_storage > 0,
            "fixture should exercise storage tries"
        );
    }

    #[test]
    fn clone_is_deep_for_storage() {
        let mut w = WorldState::new();
        w.set_storage(addr(1), H256::ZERO, U256::ONE);
        w.set_balance(addr(1), U256::ONE);
        let snap = w.clone();
        w.set_storage(addr(1), H256::ZERO, U256::from(2u64));
        assert_eq!(snap.storage(&addr(1), &H256::ZERO), U256::ONE);
    }

    // ---- incremental-commitment specific coverage ----

    /// Builds a fresh world with the same contents (no memo) for oracle use.
    fn rebuilt(w: &WorldState) -> WorldState {
        let mut fresh = WorldState::new();
        for (a, acct) in w.accounts() {
            let m = fresh.account_mut(*a);
            *m = acct.clone();
        }
        fresh
    }

    #[test]
    fn incremental_root_matches_fresh_build_across_mutations() {
        let mut w = WorldState::new();
        for i in 0..50u64 {
            w.set_balance(addr(i), U256::from(100 + i));
            if i % 4 == 0 {
                w.set_storage(addr(i), H256::from_low_u64(i), U256::from(i + 1));
            }
        }
        // Commit, then mutate a small dirty set repeatedly; every recommit
        // must match a from-scratch world.
        for round in 0..5u64 {
            let _ = w.state_root();
            w.set_balance(addr(round), U256::from(round * 7 + 1));
            w.set_storage(addr(round), H256::from_low_u64(99), U256::from(round + 1));
            w.set_storage(addr(round + 1), H256::from_low_u64(round), U256::ZERO);
            w.set_nonce(addr(49 - round), round);
            assert_eq!(w.state_root(), rebuilt(&w).state_root(), "round {round}");
            assert_eq!(w.state_root(), w.rebuild_root());
        }
    }

    #[test]
    fn account_emptied_after_commit_leaves_root() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::from(5u64));
        let r_one = w.state_root();
        w.set_balance(addr(2), U256::from(9u64));
        let _ = w.state_root();
        // Empty account 2 again (balance back to zero ⇒ EIP-161 empty); the
        // incremental path must remove it from the retained account trie.
        w.set_balance(addr(2), U256::ZERO);
        assert_eq!(w.state_root(), r_one);
    }

    #[test]
    fn storage_emptied_after_commit_drops_trie() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        let r_plain = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(3), U256::from(4u64));
        let _ = w.state_root();
        w.set_storage(addr(1), H256::from_low_u64(3), U256::ZERO);
        assert_eq!(w.state_root(), r_plain);
        // No stale storage nodes may linger in the commit output.
        let (_, nodes) = w.commit_tries();
        let fresh_nodes = rebuilt(&w).commit_tries().1;
        let mut a = nodes;
        let mut b = fresh_nodes;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn account_mut_escape_hatch_is_tracked() {
        let mut w = WorldState::new();
        w.set_balance(addr(1), U256::ONE);
        w.set_storage(addr(1), H256::from_low_u64(1), U256::from(2u64));
        let _ = w.state_root();
        // Mutate the storage map directly, bypassing set_storage.
        w.account_mut(addr(1))
            .storage
            .insert(H256::from_low_u64(7), U256::from(8u64));
        assert_eq!(w.state_root(), w.rebuild_root());
    }

    #[test]
    fn snapshot_diverges_independently() {
        let mut w = WorldState::new();
        for i in 0..20u64 {
            w.set_balance(addr(i), U256::from(i + 1));
        }
        let base_root = w.state_root();
        let mut snap = w.snapshot();
        // Writes on each side are invisible to the other.
        w.set_balance(addr(0), U256::from(777u64));
        snap.set_balance(addr(1), U256::from(888u64));
        assert_eq!(snap.balance(&addr(0)), U256::ONE);
        assert_eq!(w.balance(&addr(1)), U256::from(2u64));
        assert_ne!(w.state_root(), base_root);
        assert_ne!(snap.state_root(), base_root);
        assert_ne!(w.state_root(), snap.state_root());
        assert_eq!(w.state_root(), w.rebuild_root());
        assert_eq!(snap.state_root(), snap.rebuild_root());
        // Reverting the divergent writes re-converges both lineages.
        w.set_balance(addr(0), U256::ONE);
        snap.set_balance(addr(1), U256::from(2u64));
        assert_eq!(w.state_root(), base_root);
        assert_eq!(snap.state_root(), base_root);
    }

    #[test]
    fn incremental_commit_tries_match_fresh_world() {
        let mut w = WorldState::new();
        for i in 0..60u64 {
            w.set_balance(addr(i), U256::from(1 + i));
            w.set_storage(addr(i), H256::from_low_u64(i % 5), U256::from(i + 1));
        }
        let _ = w.commit_tries();
        for i in 0..10u64 {
            w.set_storage(addr(i), H256::from_low_u64(i % 5), U256::from(1000 + i));
            w.set_balance(addr(i + 30), U256::from(2000 + i));
        }
        let (root_inc, mut nodes_inc) = w.commit_tries();
        let (root_fresh, mut nodes_fresh) = rebuilt(&w).commit_tries();
        assert_eq!(root_inc, root_fresh);
        nodes_inc.sort();
        nodes_fresh.sort();
        assert_eq!(nodes_inc, nodes_fresh);
    }

    // ---- base-backed (layered) world coverage ----

    use crate::reader::MapReader;

    /// A resident fixture world plus a MapReader base answering its
    /// committed state and a layered world stacked on that base.
    fn layered_fixture(n: u64) -> (WorldState, WorldState) {
        let mut resident = WorldState::new();
        for i in 0..n {
            resident.set_balance(addr(i), U256::from(100 + i));
            resident.set_nonce(addr(i), i % 3);
            if i % 2 == 0 {
                resident.set_storage(addr(i), H256::from_low_u64(i), U256::from(i + 1));
                resident.set_storage(addr(i), H256::from_low_u64(i + 7), U256::from(2 * i + 1));
            }
            if i % 5 == 0 {
                resident.set_code(addr(i), vec![0x60, i as u8]);
            }
        }
        let mut base = MapReader::new();
        base.apply(&resident.full_delta());
        let commit = resident.refresh();
        let layered = WorldState::layered(Arc::new(base), commit.account_trie.clone());
        (resident, layered)
    }

    #[test]
    fn layered_reads_fall_through_to_base() {
        let (resident, layered) = layered_fixture(12);
        for i in 0..12u64 {
            assert_eq!(layered.balance(&addr(i)), resident.balance(&addr(i)));
            assert_eq!(layered.nonce(&addr(i)), resident.nonce(&addr(i)));
            assert_eq!(layered.code(&addr(i)), resident.code(&addr(i)));
            let slot = H256::from_low_u64(i);
            assert_eq!(
                layered.storage(&addr(i), &slot),
                resident.storage(&addr(i), &slot)
            );
        }
        // Absent everywhere reads zero.
        assert_eq!(layered.balance(&addr(99)), U256::ZERO);
        assert_eq!(layered.storage(&addr(99), &H256::ZERO), U256::ZERO);
        // Nothing was materialized by reads.
        assert_eq!(layered.account_count(), 0);
    }

    #[test]
    fn layered_root_matches_resident_after_same_mutations() {
        let (mut resident, mut layered) = layered_fixture(20);
        assert_eq!(layered.state_root(), resident.state_root());
        let mutate = |w: &mut WorldState| {
            w.set_balance(addr(3), U256::from(777u64));
            w.set_storage(addr(2), H256::from_low_u64(2), U256::from(999u64));
            w.set_storage(addr(4), H256::from_low_u64(4), U256::ZERO); // clear a base slot
            w.set_storage(addr(21), H256::from_low_u64(1), U256::ONE); // fresh account
            w.set_nonce(addr(21), 1);
            w.set_balance(addr(5), U256::ZERO); // body emptied, storage may live on
        };
        mutate(&mut resident);
        mutate(&mut layered);
        assert_eq!(layered.state_root(), resident.state_root());
        assert_eq!(layered.state_root(), layered.rebuild_root());
        // Only the touched accounts were materialized.
        assert!(layered.account_count() <= 5);
        // Second round over the already-primed tries.
        let again = |w: &mut WorldState| {
            w.set_storage(addr(2), H256::from_low_u64(2), U256::ZERO);
            w.set_storage(addr(2), H256::from_low_u64(77), U256::from(5u64));
            w.set_balance(addr(0), U256::from(1u64));
        };
        again(&mut resident);
        again(&mut layered);
        assert_eq!(layered.state_root(), resident.state_root());
    }

    #[test]
    fn layered_zero_write_shadows_base() {
        let (_, mut layered) = layered_fixture(6);
        let slot = H256::from_low_u64(0);
        assert_eq!(layered.storage(&addr(0), &slot), U256::ONE);
        layered.set_storage(addr(0), slot, U256::ZERO);
        assert_eq!(layered.storage(&addr(0), &slot), U256::ZERO);
        // The other base slot of addr(0) is untouched.
        assert_eq!(layered.storage(&addr(0), &H256::from_low_u64(7)), U256::ONE);
    }

    #[test]
    fn rebase_preserves_root_and_sheds_accounts() {
        let (resident, _) = layered_fixture(15);
        let root = resident.state_root();
        let mut base = MapReader::new();
        base.apply(&resident.full_delta());
        let mut world = resident.clone();
        world.rebase(Arc::new(base));
        assert_eq!(world.account_count(), 0);
        assert_eq!(world.state_root(), root);
        // Mutations keep committing correctly after the rebase.
        world.set_balance(addr(1), U256::from(123456u64));
        assert_eq!(world.state_root(), world.rebuild_root());
    }

    #[test]
    fn layered_snapshot_forks_diverge_like_resident_ones() {
        let (resident, layered) = layered_fixture(10);
        let mut fork_a = layered.snapshot();
        let mut fork_b = layered.snapshot();
        fork_a.set_balance(addr(1), U256::from(111u64));
        fork_b.set_balance(addr(1), U256::from(222u64));
        let mut oracle_a = resident.clone();
        oracle_a.set_balance(addr(1), U256::from(111u64));
        let mut oracle_b = resident.clone();
        oracle_b.set_balance(addr(1), U256::from(222u64));
        assert_eq!(fork_a.state_root(), oracle_a.state_root());
        assert_eq!(fork_b.state_root(), oracle_b.state_root());
        // The shared parent overlay is untouched by either fork.
        assert_eq!(layered.balance(&addr(1)), U256::from(101u64));
    }

    #[test]
    fn delta_for_keys_roundtrips_through_map_reader() {
        let (resident, mut layered) = layered_fixture(8);
        layered.set_balance(addr(2), U256::from(5000u64));
        layered.set_nonce(addr(2), 9);
        layered.set_storage(addr(0), H256::from_low_u64(0), U256::ZERO);
        layered.set_storage(addr(3), H256::from_low_u64(40), U256::from(4u64));
        layered.set_balance(addr(1), U256::ZERO); // EIP-161 empties addr(1)?
        layered.set_nonce(addr(1), 0);
        let keys = [
            AccessKey::Balance(addr(2)),
            AccessKey::Nonce(addr(2)),
            AccessKey::Storage(addr(0), H256::from_low_u64(0)),
            AccessKey::Storage(addr(3), H256::from_low_u64(40)),
            AccessKey::Balance(addr(1)),
        ];
        let delta = layered.delta_for_keys(keys.iter());
        // Fold the delta into a copy of the base: reads must match the
        // layered world's post-state.
        let mut folded = MapReader::new();
        folded.apply(&resident.full_delta());
        folded.apply(&delta);
        let reread = WorldState::layered(Arc::new(folded), {
            let commit = layered.refresh();
            commit.account_trie.clone()
        });
        assert_eq!(reread.state_root(), layered.state_root());
        assert_eq!(reread.balance(&addr(2)), U256::from(5000u64));
        assert_eq!(reread.nonce(&addr(2)), 9);
        assert_eq!(reread.storage(&addr(0), &H256::from_low_u64(0)), U256::ZERO);
        assert_eq!(
            reread.storage(&addr(3), &H256::from_low_u64(40)),
            U256::from(4u64)
        );
    }

    #[test]
    fn layered_first_commit_without_memo_enumerates_base() {
        // A layered world whose commit memo was never seeded must still
        // produce the right root by enumerating the base (slow fallback).
        let (resident, _) = layered_fixture(9);
        let mut base = MapReader::new();
        base.apply(&resident.full_delta());
        let mut world = WorldState::new();
        world.base = Some(Arc::new(base));
        assert_eq!(world.state_root(), resident.state_root());
        world.set_balance(addr(30), U256::from(3u64));
        assert_eq!(world.state_root(), world.rebuild_root());
    }

    #[test]
    fn parallel_hashing_path_matches_serial_oracle() {
        // Enough dirty accounts with storage to cross the parallel
        // threshold inside compute_updates.
        let mut w = WorldState::new();
        for i in 0..200u64 {
            w.set_balance(addr(i), U256::from(i + 1));
            for s in 0..4u64 {
                w.set_storage(addr(i), H256::from_low_u64(s), U256::from(i * 10 + s + 1));
            }
        }
        assert_eq!(w.state_root(), w.rebuild_root());
        // Dirty a wide slice after the first commit and recommit.
        for i in 0..100u64 {
            w.set_storage(addr(i), H256::from_low_u64(1), U256::from(5555 + i));
        }
        assert_eq!(w.state_root(), w.rebuild_root());
    }
}
