//! Property tests for parallel trie commitment: sharded `apply_batch` and
//! the world's threaded `commit_tries` must be byte-for-byte equivalent to
//! the serial path — same root as the from-scratch `rebuild_root` oracle,
//! same memoized commit-node set — for any dirty fraction and any worker
//! count in 1..=16.

use std::collections::HashMap;

use bp_state::trie::Trie;
use bp_state::WorldState;
use bp_types::{Address, H256, U256};
use proptest::prelude::*;

/// A batch of trie updates: `Some` inserts, `None` removes. Keys collide
/// freely across batches (that's the interesting case) but are deduped
/// within one batch — `apply_batch` requires distinct keys.
fn arb_batch() -> impl Strategy<Value = Vec<(Vec<u8>, Option<Vec<u8>>)>> {
    prop::collection::vec(
        (
            prop::collection::vec(any::<u8>(), 1..6),
            prop::option::of(prop::collection::vec(any::<u8>(), 1..12)),
        ),
        0..80,
    )
    .prop_map(|pairs| {
        let mut seen: HashMap<Vec<u8>, Option<Vec<u8>>> = HashMap::new();
        for (k, v) in pairs {
            seen.insert(k, v);
        }
        seen.into_iter().collect()
    })
}

fn sorted_nodes(mut nodes: Vec<(H256, Vec<u8>)>) -> Vec<(H256, Vec<u8>)> {
    nodes.sort();
    nodes
}

proptest! {
    /// `apply_batch` at any thread count equals the one-by-one serial
    /// mutation sequence: same root, same per-reference commit-node set,
    /// and the same answers to point reads.
    #[test]
    fn apply_batch_equals_serial_mutation(
        base in arb_batch(),
        batch in arb_batch(),
        threads in 1usize..=16,
    ) {
        let mut serial = Trie::new();
        for (k, v) in &base {
            match v {
                Some(v) => serial.insert(k, v.clone()),
                None => serial.remove(k),
            }
        }
        let mut parallel = serial.clone();

        for (k, v) in &batch {
            match v {
                Some(v) => serial.insert(k, v.clone()),
                None => serial.remove(k),
            }
        }
        parallel.apply_batch(batch.clone(), threads);

        prop_assert_eq!(parallel.root_hash(), serial.root_hash(), "threads {}", threads);
        let (p_root, p_nodes) = parallel.commit_nodes();
        let (s_root, s_nodes) = serial.commit_nodes();
        prop_assert_eq!(p_root, s_root);
        prop_assert_eq!(sorted_nodes(p_nodes), sorted_nodes(s_nodes));
        for (k, _) in &batch {
            prop_assert_eq!(parallel.get(k), serial.get(k));
        }
    }

    /// Two successive parallel batches (warm memo) still match a cold serial
    /// build of the final contents — the memo carries no thread-count
    /// residue from one commit to the next.
    #[test]
    fn repeated_parallel_batches_match_cold_build(
        first in arb_batch(),
        second in arb_batch(),
        t1 in 1usize..=16,
        t2 in 1usize..=16,
    ) {
        let mut warm = Trie::new();
        warm.apply_batch(first.clone(), t1);
        let _ = warm.commit_nodes(); // prime the memo between batches
        warm.apply_batch(second.clone(), t2);

        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for (k, v) in first.into_iter().chain(second) {
            match v {
                Some(v) => {
                    model.insert(k, v);
                }
                None => {
                    model.remove(&k);
                }
            }
        }
        let mut cold = Trie::new();
        for (k, v) in &model {
            cold.insert(k, v.clone());
        }

        let (w_root, w_nodes) = warm.commit_nodes();
        let (c_root, c_nodes) = cold.commit_nodes();
        prop_assert_eq!(w_root, c_root, "t1 {} t2 {}", t1, t2);
        prop_assert_eq!(sorted_nodes(w_nodes), sorted_nodes(c_nodes));
    }
}

/// World-level mutations: a population of accounts, then a dirty subset
/// (balance/nonce/storage writes, some accounts zeroed back to empty).
#[derive(Clone, Debug)]
struct WorldOps {
    accounts: u64,
    dirty: Vec<(u64, u64, Option<u64>)>, // (account index, balance, storage slot)
}

fn arb_world_ops() -> impl Strategy<Value = WorldOps> {
    (
        4u64..200,
        prop::collection::vec(
            (any::<u64>(), any::<u64>(), prop::option::of(0u64..8)),
            1..60,
        ),
    )
        .prop_map(|(accounts, raw)| WorldOps {
            accounts,
            dirty: raw
                .into_iter()
                .map(|(i, bal, slot)| (i % (accounts * 2), bal, slot))
                .collect(),
        })
}

fn apply_ops(world: &mut WorldState, ops: &WorldOps) {
    for &(idx, balance, slot) in &ops.dirty {
        let addr = Address::from_index(idx + 1);
        world.set_balance(addr, U256::from(balance));
        if let Some(slot) = slot {
            let key = H256::from_low_u64(slot);
            world.set_storage(addr, key, U256::from(balance / 2));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The world's threaded commit path — sharded account-trie apply plus
    /// parallel storage-trie hashing — equals both the serial commit and
    /// the from-scratch `rebuild_root` oracle, with identical node sets.
    #[test]
    fn world_commit_threads_equal_serial_and_oracle(
        ops in arb_world_ops(),
        threads in 2usize..=16,
    ) {
        let mut serial = WorldState::new();
        serial.set_commit_threads(1);
        for i in 1..=ops.accounts {
            serial.set_balance(Address::from_index(i), U256::from(1_000 + i));
        }
        // Prime the incremental memo, then dirty a subset on top of it.
        let _ = serial.commit_tries();
        let mut parallel = serial.clone();
        parallel.set_commit_threads(threads);

        apply_ops(&mut serial, &ops);
        apply_ops(&mut parallel, &ops);

        let (s_root, s_nodes) = serial.commit_tries();
        let (p_root, p_nodes) = parallel.commit_tries();
        prop_assert_eq!(p_root, s_root, "threads {}", threads);
        prop_assert_eq!(p_root, serial.rebuild_root());
        prop_assert_eq!(sorted_nodes(p_nodes), sorted_nodes(s_nodes));
    }
}
