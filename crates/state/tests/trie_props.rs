//! Property tests: the MPT behaves like a sorted map and its root is a
//! content commitment (order-independent, removal-consistent), and proofs
//! verify.

use std::collections::BTreeMap;

use bp_state::trie::{verify_proof, Trie};
use proptest::prelude::*;

fn arb_pairs() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    prop::collection::vec(
        (
            prop::collection::vec(any::<u8>(), 1..8),
            prop::collection::vec(any::<u8>(), 1..16),
        ),
        0..40,
    )
}

fn build(pairs: &[(Vec<u8>, Vec<u8>)]) -> (Trie, BTreeMap<Vec<u8>, Vec<u8>>) {
    let mut trie = Trie::new();
    let mut model = BTreeMap::new();
    for (k, v) in pairs {
        trie.insert(k, v.clone());
        model.insert(k.clone(), v.clone());
    }
    (trie, model)
}

proptest! {
    #[test]
    fn trie_matches_btreemap_model(pairs in arb_pairs(), probes in arb_pairs()) {
        let (trie, model) = build(&pairs);
        for (k, _) in pairs.iter().chain(probes.iter()) {
            prop_assert_eq!(trie.get(k), model.get(k).map(|v| v.as_slice()));
        }
    }

    #[test]
    fn root_independent_of_insertion_order(pairs in arb_pairs(), seed in any::<u64>()) {
        let (t1, model) = build(&pairs);
        // Shuffle deterministically; later duplicates must override earlier
        // ones, so replay from the model (unique keys) instead.
        let mut entries: Vec<_> = model.into_iter().collect();
        let n = entries.len().max(1);
        for i in (1..entries.len()).rev() {
            let j = (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64) % n as u64) as usize % (i + 1);
            entries.swap(i, j);
        }
        let mut t2 = Trie::new();
        for (k, v) in entries {
            t2.insert(&k, v);
        }
        prop_assert_eq!(t1.root_hash(), t2.root_hash());
    }

    #[test]
    fn removal_equals_never_inserted(pairs in arb_pairs(), extra in prop::collection::vec(any::<u8>(), 1..8), value in prop::collection::vec(any::<u8>(), 1..8)) {
        let (mut with_extra, model) = build(&pairs);
        let was_present = model.contains_key(&extra);
        with_extra.insert(&extra, value);
        with_extra.remove(&extra);
        // Removing a key that the base pairs never contained must reproduce
        // the bare trie exactly.
        if !was_present {
            let (bare, _) = build(&pairs);
            prop_assert_eq!(with_extra.root_hash(), bare.root_hash());
        } else {
            prop_assert_eq!(with_extra.get(&extra), None);
        }
    }

    #[test]
    fn iter_is_the_model(pairs in arb_pairs()) {
        let (trie, model) = build(&pairs);
        let got = trie.iter();
        prop_assert_eq!(got.len(), model.len());
        for (k, v) in got {
            prop_assert_eq!(model.get(&k).map(|x| x.as_slice()), Some(v.as_slice()));
        }
    }

    #[test]
    fn proofs_verify_for_all_keys(pairs in arb_pairs()) {
        let (trie, model) = build(&pairs);
        let root = trie.root_hash();
        for (k, v) in &model {
            let proof = trie.prove(k);
            prop_assert_eq!(verify_proof(root, k, &proof).unwrap(), Some(v.clone()));
        }
    }

    #[test]
    fn absence_proofs_verify(pairs in arb_pairs(), probe in prop::collection::vec(any::<u8>(), 1..8)) {
        let (trie, model) = build(&pairs);
        prop_assume!(!model.contains_key(&probe));
        let root = trie.root_hash();
        let proof = trie.prove(&probe);
        prop_assert_eq!(verify_proof(root, &probe, &proof).unwrap(), None);
    }

    #[test]
    fn distinct_contents_distinct_roots(pairs in arb_pairs(), k in prop::collection::vec(any::<u8>(), 1..8), v1 in prop::collection::vec(any::<u8>(), 1..8), v2 in prop::collection::vec(any::<u8>(), 1..8)) {
        prop_assume!(v1 != v2);
        let (mut a, _) = build(&pairs);
        let (mut b, _) = build(&pairs);
        a.insert(&k, v1);
        b.insert(&k, v2);
        prop_assert_ne!(a.root_hash(), b.root_hash());
    }
}

// ---------------------------------------------------------------------------
// Memoized commitment equivalence
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn memoized_roots_and_commits_match_cold_build(
        pairs in arb_pairs(),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        // Interleave mutations with root_hash/commit_nodes/clone so the
        // per-node memo is warm in as many states as possible; the final
        // root and emitted node set must match a cold build of the same
        // contents.
        let mut trie = Trie::new();
        let mut model = BTreeMap::new();
        for (i, (k, v)) in pairs.iter().enumerate() {
            trie.insert(k, v.clone());
            model.insert(k.clone(), v.clone());
            if i % 3 == 0 {
                let _ = trie.root_hash();
            }
            if i % 7 == 0 {
                let _ = trie.commit_nodes();
            }
        }
        let snapshot = trie.clone();
        let snapshot_root = trie.root_hash();
        if !pairs.is_empty() {
            for idx in &removals {
                let (k, _) = &pairs[idx.index(pairs.len())];
                trie.remove(k);
                model.remove(k);
            }
        }

        let mut cold = Trie::new();
        for (k, v) in &model {
            cold.insert(k, v.clone());
        }
        prop_assert_eq!(trie.root_hash(), cold.root_hash());

        let (warm_root, mut warm_nodes) = trie.commit_nodes();
        let (cold_root, mut cold_nodes) = cold.commit_nodes();
        prop_assert_eq!(warm_root, cold_root);
        warm_nodes.sort();
        cold_nodes.sort();
        prop_assert_eq!(warm_nodes, cold_nodes);

        // The pre-removal clone is untouched by the removals (structural
        // sharing never leaks mutations).
        prop_assert_eq!(snapshot.root_hash(), snapshot_root);
    }
}
