//! Property tests for the world state: the MPT commitment is a pure
//! function of contents, and write-set application has the algebraic
//! properties OCC-WSI relies on (disjoint write sets commute).

use bp_state::WorldState;
use bp_types::{AccessKey, Address, WriteSet, H256, U256};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Mutation {
    Balance(u8, u64),
    Nonce(u8, u32),
    Storage(u8, u8, u64),
}

fn arb_mutations() -> impl Strategy<Value = Vec<Mutation>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Mutation::Balance(a, v)),
            (any::<u8>(), any::<u32>()).prop_map(|(a, v)| Mutation::Nonce(a, v)),
            (any::<u8>(), 0u8..8, any::<u64>()).prop_map(|(a, s, v)| Mutation::Storage(a, s, v)),
        ],
        0..40,
    )
}

fn apply(world: &mut WorldState, m: &Mutation) {
    match *m {
        Mutation::Balance(a, v) => world.set_balance(Address::from_index(a as u64), U256::from(v)),
        Mutation::Nonce(a, v) => world.set_nonce(Address::from_index(a as u64), v as u64),
        Mutation::Storage(a, s, v) => world.set_storage(
            Address::from_index(a as u64),
            H256::from_low_u64(s as u64),
            U256::from(v),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn state_root_depends_only_on_content(muts in arb_mutations(), seed in any::<u64>()) {
        let mut a = WorldState::new();
        for m in &muts {
            apply(&mut a, m);
        }
        // Apply the same final content in a shuffled order (with duplicated
        // intermediate writes, last-write-wins must hold).
        let mut order: Vec<usize> = (0..muts.len()).collect();
        let n = order.len().max(1);
        for i in (1..order.len()).rev() {
            let j = (seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64) % n as u64)
                as usize % (i + 1);
            order.swap(i, j);
        }
        // Shuffling changes which write wins per key, so instead rebuild
        // from a's observable content: roots must match exactly.
        let mut b = WorldState::new();
        for (addr, acct) in a.accounts() {
            b.set_balance(*addr, acct.balance);
            b.set_nonce(*addr, acct.nonce);
            for (slot, value) in &acct.storage {
                b.set_storage(*addr, *slot, *value);
            }
            if !acct.code.is_empty() {
                b.set_code(*addr, (*acct.code).clone());
            }
        }
        prop_assert_eq!(a.state_root(), b.state_root());
        let _ = order;
    }

    #[test]
    fn disjoint_write_sets_commute(muts_a in arb_mutations(), muts_b in arb_mutations()) {
        // Build two write sets over disjoint address spaces.
        let mut ws_a: WriteSet = Default::default();
        for m in &muts_a {
            match *m {
                Mutation::Balance(a, v) => {
                    ws_a.insert(AccessKey::Balance(Address::from_index(a as u64)), U256::from(v));
                }
                Mutation::Nonce(a, v) => {
                    ws_a.insert(AccessKey::Nonce(Address::from_index(a as u64)), U256::from(v as u64));
                }
                Mutation::Storage(a, s, v) => {
                    ws_a.insert(
                        AccessKey::Storage(
                            Address::from_index(a as u64),
                            H256::from_low_u64(s as u64),
                        ),
                        U256::from(v),
                    );
                }
            }
        }
        let mut ws_b: WriteSet = Default::default();
        for m in &muts_b {
            // Offset B's addresses out of A's range (u8 space + 1000).
            match *m {
                Mutation::Balance(a, v) => {
                    ws_b.insert(
                        AccessKey::Balance(Address::from_index(1000 + a as u64)),
                        U256::from(v),
                    );
                }
                Mutation::Nonce(a, v) => {
                    ws_b.insert(
                        AccessKey::Nonce(Address::from_index(1000 + a as u64)),
                        U256::from(v as u64),
                    );
                }
                Mutation::Storage(a, s, v) => {
                    ws_b.insert(
                        AccessKey::Storage(
                            Address::from_index(1000 + a as u64),
                            H256::from_low_u64(s as u64),
                        ),
                        U256::from(v),
                    );
                }
            }
        }

        let mut ab = WorldState::new();
        ab.apply_writes(&ws_a);
        ab.apply_writes(&ws_b);
        let mut ba = WorldState::new();
        ba.apply_writes(&ws_b);
        ba.apply_writes(&ws_a);
        prop_assert_eq!(ab.state_root(), ba.state_root());
    }

    #[test]
    fn read_key_reflects_writes(muts in arb_mutations()) {
        let mut world = WorldState::new();
        let mut ws: WriteSet = Default::default();
        for m in &muts {
            match *m {
                Mutation::Balance(a, v) => {
                    ws.insert(AccessKey::Balance(Address::from_index(a as u64)), U256::from(v));
                }
                Mutation::Nonce(a, v) => {
                    ws.insert(AccessKey::Nonce(Address::from_index(a as u64)), U256::from(v as u64));
                }
                Mutation::Storage(a, s, v) => {
                    ws.insert(
                        AccessKey::Storage(
                            Address::from_index(a as u64),
                            H256::from_low_u64(s as u64),
                        ),
                        U256::from(v),
                    );
                }
            }
        }
        world.apply_writes(&ws);
        for (key, value) in &ws {
            prop_assert_eq!(world.read_key(key), *value, "key {:?}", key);
        }
    }
}
