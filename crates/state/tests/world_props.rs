//! Property tests for the world state: the MPT commitment is a pure
//! function of contents, and write-set application has the algebraic
//! properties OCC-WSI relies on (disjoint write sets commute).

use bp_state::WorldState;
use bp_types::{AccessKey, Address, WriteSet, H256, U256};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Mutation {
    Balance(u8, u64),
    Nonce(u8, u32),
    Storage(u8, u8, u64),
}

fn arb_mutations() -> impl Strategy<Value = Vec<Mutation>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u64>()).prop_map(|(a, v)| Mutation::Balance(a, v)),
            (any::<u8>(), any::<u32>()).prop_map(|(a, v)| Mutation::Nonce(a, v)),
            (any::<u8>(), 0u8..8, any::<u64>()).prop_map(|(a, s, v)| Mutation::Storage(a, s, v)),
        ],
        0..40,
    )
}

fn apply(world: &mut WorldState, m: &Mutation) {
    match *m {
        Mutation::Balance(a, v) => world.set_balance(Address::from_index(a as u64), U256::from(v)),
        Mutation::Nonce(a, v) => world.set_nonce(Address::from_index(a as u64), v as u64),
        Mutation::Storage(a, s, v) => world.set_storage(
            Address::from_index(a as u64),
            H256::from_low_u64(s as u64),
            U256::from(v),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn state_root_depends_only_on_content(muts in arb_mutations(), seed in any::<u64>()) {
        let mut a = WorldState::new();
        for m in &muts {
            apply(&mut a, m);
        }
        // Apply the same final content in a shuffled order (with duplicated
        // intermediate writes, last-write-wins must hold).
        let mut order: Vec<usize> = (0..muts.len()).collect();
        let n = order.len().max(1);
        for i in (1..order.len()).rev() {
            let j = (seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64) % n as u64)
                as usize % (i + 1);
            order.swap(i, j);
        }
        // Shuffling changes which write wins per key, so instead rebuild
        // from a's observable content: roots must match exactly.
        let mut b = WorldState::new();
        for (addr, acct) in a.accounts() {
            b.set_balance(*addr, acct.balance);
            b.set_nonce(*addr, acct.nonce);
            for (slot, value) in &acct.storage {
                b.set_storage(*addr, *slot, *value);
            }
            if !acct.code.is_empty() {
                b.set_code(*addr, (*acct.code).clone());
            }
        }
        prop_assert_eq!(a.state_root(), b.state_root());
        let _ = order;
    }

    #[test]
    fn disjoint_write_sets_commute(muts_a in arb_mutations(), muts_b in arb_mutations()) {
        // Build two write sets over disjoint address spaces.
        let mut ws_a: WriteSet = Default::default();
        for m in &muts_a {
            match *m {
                Mutation::Balance(a, v) => {
                    ws_a.insert(AccessKey::Balance(Address::from_index(a as u64)), U256::from(v));
                }
                Mutation::Nonce(a, v) => {
                    ws_a.insert(AccessKey::Nonce(Address::from_index(a as u64)), U256::from(v as u64));
                }
                Mutation::Storage(a, s, v) => {
                    ws_a.insert(
                        AccessKey::Storage(
                            Address::from_index(a as u64),
                            H256::from_low_u64(s as u64),
                        ),
                        U256::from(v),
                    );
                }
            }
        }
        let mut ws_b: WriteSet = Default::default();
        for m in &muts_b {
            // Offset B's addresses out of A's range (u8 space + 1000).
            match *m {
                Mutation::Balance(a, v) => {
                    ws_b.insert(
                        AccessKey::Balance(Address::from_index(1000 + a as u64)),
                        U256::from(v),
                    );
                }
                Mutation::Nonce(a, v) => {
                    ws_b.insert(
                        AccessKey::Nonce(Address::from_index(1000 + a as u64)),
                        U256::from(v as u64),
                    );
                }
                Mutation::Storage(a, s, v) => {
                    ws_b.insert(
                        AccessKey::Storage(
                            Address::from_index(1000 + a as u64),
                            H256::from_low_u64(s as u64),
                        ),
                        U256::from(v),
                    );
                }
            }
        }

        let mut ab = WorldState::new();
        ab.apply_writes(&ws_a);
        ab.apply_writes(&ws_b);
        let mut ba = WorldState::new();
        ba.apply_writes(&ws_b);
        ba.apply_writes(&ws_a);
        prop_assert_eq!(ab.state_root(), ba.state_root());
    }

    #[test]
    fn read_key_reflects_writes(muts in arb_mutations()) {
        let mut world = WorldState::new();
        let mut ws: WriteSet = Default::default();
        for m in &muts {
            match *m {
                Mutation::Balance(a, v) => {
                    ws.insert(AccessKey::Balance(Address::from_index(a as u64)), U256::from(v));
                }
                Mutation::Nonce(a, v) => {
                    ws.insert(AccessKey::Nonce(Address::from_index(a as u64)), U256::from(v as u64));
                }
                Mutation::Storage(a, s, v) => {
                    ws.insert(
                        AccessKey::Storage(
                            Address::from_index(a as u64),
                            H256::from_low_u64(s as u64),
                        ),
                        U256::from(v),
                    );
                }
            }
        }
        world.apply_writes(&ws);
        for (key, value) in &ws {
            prop_assert_eq!(world.read_key(key), *value, "key {:?}", key);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental commitment equivalence
// ---------------------------------------------------------------------------

/// Richer op stream for the incremental-commitment properties: zero writes
/// (slot deletion), zeroed balances/nonces (EIP-161 account emptying), code
/// installs, the `account_mut` escape hatch, CoW snapshots, and mid-sequence
/// commits that advance the incremental memo.
#[derive(Clone, Debug)]
enum Op {
    Balance(u8, u8),
    Nonce(u8, u8),
    Storage(u8, u8, u8),
    Code(u8, u8),
    RawStorage(u8, u8, u8),
    Commit,
    Fork,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Tiny address/slot/value spaces so deletions, emptyings, and rewrites
    // of the same key are common.
    prop::collection::vec(
        prop_oneof![
            (0u8..12, 0u8..4).prop_map(|(a, v)| Op::Balance(a, v)),
            (0u8..12, 0u8..4).prop_map(|(a, v)| Op::Nonce(a, v)),
            (0u8..12, 0u8..6, 0u8..4).prop_map(|(a, s, v)| Op::Storage(a, s, v)),
            (0u8..12, 0u8..3).prop_map(|(a, v)| Op::Code(a, v)),
            (0u8..12, 0u8..6, 0u8..4).prop_map(|(a, s, v)| Op::RawStorage(a, s, v)),
            Just(Op::Commit),
            Just(Op::Fork),
        ],
        0..60,
    )
}

fn apply_op(world: &mut WorldState, op: &Op) {
    let addr = |a: u8| Address::from_index(a as u64);
    match *op {
        Op::Balance(a, v) => world.set_balance(addr(a), U256::from(v as u64)),
        Op::Nonce(a, v) => world.set_nonce(addr(a), v as u64),
        Op::Storage(a, s, v) => {
            world.set_storage(addr(a), H256::from_low_u64(s as u64), U256::from(v as u64))
        }
        Op::Code(a, v) => world.set_code(addr(a), vec![v; v as usize]),
        Op::RawStorage(a, s, v) => {
            // Bypass set_storage: mutate the account's storage map directly
            // through the conservatively-tracked escape hatch.
            let acct = world.account_mut(addr(a));
            let slot = H256::from_low_u64(s as u64);
            if v == 0 {
                acct.storage.remove(&slot);
            } else {
                acct.storage.insert(slot, U256::from(v as u64));
            }
        }
        Op::Commit | Op::Fork => {}
    }
}

/// A fresh world with identical contents and no incremental memo.
fn fresh_copy(world: &WorldState) -> WorldState {
    let mut fresh = WorldState::new();
    for (a, acct) in world.accounts() {
        *fresh.account_mut(*a) = acct.clone();
    }
    fresh
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_root_always_matches_from_scratch(ops in arb_ops()) {
        let mut world = WorldState::new();
        for op in &ops {
            apply_op(&mut world, op);
            if matches!(op, Op::Commit) {
                // Advance the incremental memo mid-sequence; the root must
                // match a from-scratch rebuild at every commit point.
                prop_assert_eq!(world.state_root(), world.rebuild_root());
            }
        }
        let incremental = world.state_root();
        prop_assert_eq!(incremental, world.rebuild_root());
        prop_assert_eq!(incremental, fresh_copy(&world).state_root());
    }

    #[test]
    fn incremental_commit_tries_roundtrip(ops in arb_ops()) {
        use bp_state::trie::Trie;

        let mut world = WorldState::new();
        for op in &ops {
            apply_op(&mut world, op);
            if matches!(op, Op::Commit) {
                let _ = world.commit_tries();
            }
        }
        let (root, nodes) = world.commit_tries();
        prop_assert_eq!(root, world.state_root());

        // Same nodes as a memo-less world with identical contents.
        let (fresh_root, fresh_nodes) = fresh_copy(&world).commit_tries();
        prop_assert_eq!(root, fresh_root);
        let mut a = nodes.clone();
        let mut b = fresh_nodes;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);

        // And the emitted nodes reload: the account trie from the root, and
        // each account's storage trie from the root inside its body.
        let db: std::collections::HashMap<_, _> = nodes.into_iter().collect();
        let account_trie = Trie::from_root(root, &db).unwrap();
        prop_assert_eq!(account_trie.root_hash(), root);
        for (_, body) in account_trie.iter() {
            let acct = bp_state::Account::rlp_decode(&body).unwrap();
            let storage = Trie::from_root(acct.storage_root, &db).unwrap();
            prop_assert_eq!(storage.root_hash(), acct.storage_root);
        }
    }

    #[test]
    fn snapshots_commit_independently(ops in arb_ops()) {
        // Split the op stream at every Fork: ops before run on both
        // lineages, ops after only on the original. The snapshot's root must
        // stay that of the shared prefix.
        let mut world = WorldState::new();
        let mut snapshots: Vec<(WorldState, bp_types::H256)> = Vec::new();
        for op in &ops {
            if matches!(op, Op::Fork) {
                let snap = world.snapshot();
                let root = snap.state_root();
                snapshots.push((snap, root));
            }
            apply_op(&mut world, op);
        }
        let final_root = world.state_root();
        prop_assert_eq!(final_root, world.rebuild_root());
        for (snap, root_at_fork) in snapshots {
            prop_assert_eq!(snap.state_root(), root_at_fork);
            prop_assert_eq!(snap.state_root(), snap.rebuild_root());
        }
    }
}
