//! Node persistence backends.
//!
//! A [`NodeBackend`] is a hash-keyed store for MPT node encodings. The
//! reference-counting layer ([`crate::nodestore::NodeStore`]) decides *what*
//! to put and delete; backends decide *where* it lives:
//!
//! * [`MemoryBackend`] — a plain map, for tests and ephemeral nodes;
//! * [`FileBackend`] — an append-only log of put/delete records replayed on
//!   open. Durability is two-phase: records are written through immediately
//!   but only [`NodeBackend::sync`] makes them crash-safe, returning the
//!   durable byte length a manifest can record. On reopen, bytes beyond the
//!   manifest's recorded length are truncated away, so a torn tail can never
//!   resurrect a half-written node.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bp_state::NodeResolver;
use bp_types::H256;

use crate::StoreError;

/// Hash-keyed storage for trie node encodings.
pub trait NodeBackend {
    /// The stored bytes for `hash`, if present.
    fn get(&self, hash: &H256) -> Option<Vec<u8>>;

    /// True iff `hash` is stored.
    fn contains(&self, hash: &H256) -> bool {
        self.get(hash).is_some()
    }

    /// Stores `bytes` under `hash` (idempotent for identical content —
    /// node keys are content hashes).
    fn put(&mut self, hash: H256, bytes: &[u8]) -> Result<(), StoreError>;

    /// Removes `hash`.
    fn delete(&mut self, hash: &H256) -> Result<(), StoreError>;

    /// Makes all prior writes durable, returning the durable byte length of
    /// the backing log (0 for memory backends).
    fn sync(&mut self) -> Result<u64, StoreError>;

    /// Number of stored nodes.
    fn node_count(&self) -> usize;
}

// ---------------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------------

/// A volatile in-memory backend.
#[derive(Debug, Default, Clone)]
pub struct MemoryBackend {
    nodes: HashMap<H256, Vec<u8>>,
}

impl MemoryBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NodeBackend for MemoryBackend {
    fn get(&self, hash: &H256) -> Option<Vec<u8>> {
        self.nodes.get(hash).cloned()
    }

    fn contains(&self, hash: &H256) -> bool {
        self.nodes.contains_key(hash)
    }

    fn put(&mut self, hash: H256, bytes: &[u8]) -> Result<(), StoreError> {
        self.nodes.insert(hash, bytes.to_vec());
        Ok(())
    }

    fn delete(&mut self, hash: &H256) -> Result<(), StoreError> {
        self.nodes.remove(hash);
        Ok(())
    }

    fn sync(&mut self) -> Result<u64, StoreError> {
        Ok(0)
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl NodeResolver for MemoryBackend {
    fn resolve_node(&self, hash: &H256) -> Option<Vec<u8>> {
        self.get(hash)
    }
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// An append-only on-disk backend.
///
/// Record format: `tag(1) hash(32)` followed, for puts, by
/// `len(u32 BE) bytes(len)`. The full map is replayed into memory on open;
/// the log is the durable form, the map the working form.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    nodes: HashMap<H256, Vec<u8>>,
    /// Byte length of the log including not-yet-synced appends.
    len: u64,
}

impl FileBackend {
    /// Opens (or creates) the log at `path`, trusting exactly the first
    /// `committed_len` bytes: anything beyond is an unsynced tail from a
    /// previous run and is truncated away before replay.
    pub fn open(path: &Path, committed_len: u64) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let actual = file.metadata()?.len();
        if actual < committed_len {
            return Err(StoreError::Corrupt(format!(
                "node log {} shorter ({actual}) than committed length {committed_len}",
                path.display()
            )));
        }
        if actual > committed_len {
            file.set_len(committed_len)?;
        }
        file.seek(SeekFrom::Start(0))?;
        let mut data = Vec::with_capacity(committed_len as usize);
        file.read_to_end(&mut data)?;
        let nodes = replay(&data, path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(FileBackend {
            file,
            nodes,
            len: committed_len,
        })
    }

    fn append(&mut self, record: &[u8]) -> Result<(), StoreError> {
        self.file.write_all(record)?;
        self.len += record.len() as u64;
        Ok(())
    }

    /// Byte length of the log including not-yet-synced appends. The
    /// group-commit batcher reads this to size the pending batch without
    /// forcing an fsync.
    pub fn pending_len(&self) -> u64 {
        self.len
    }
}

/// Replays a committed log prefix into the node map.
fn replay(data: &[u8], path: &Path) -> Result<HashMap<H256, Vec<u8>>, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("node log {}: {what}", path.display()));
    let mut nodes = HashMap::new();
    let mut at = 0usize;
    while at < data.len() {
        let tag = data[at];
        let hash_end = at + 1 + 32;
        let hash_bytes = data
            .get(at + 1..hash_end)
            .ok_or_else(|| corrupt("truncated record hash"))?;
        let hash = H256(hash_bytes.try_into().expect("slice is 32 bytes"));
        match tag {
            TAG_PUT => {
                let len_bytes = data
                    .get(hash_end..hash_end + 4)
                    .ok_or_else(|| corrupt("truncated record length"))?;
                let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
                let body = data
                    .get(hash_end + 4..hash_end + 4 + len)
                    .ok_or_else(|| corrupt("truncated record body"))?;
                nodes.insert(hash, body.to_vec());
                at = hash_end + 4 + len;
            }
            TAG_DELETE => {
                nodes.remove(&hash);
                at = hash_end;
            }
            _ => return Err(corrupt("unknown record tag")),
        }
    }
    Ok(nodes)
}

impl NodeBackend for FileBackend {
    fn get(&self, hash: &H256) -> Option<Vec<u8>> {
        self.nodes.get(hash).cloned()
    }

    fn contains(&self, hash: &H256) -> bool {
        self.nodes.contains_key(hash)
    }

    fn put(&mut self, hash: H256, bytes: &[u8]) -> Result<(), StoreError> {
        let mut record = Vec::with_capacity(1 + 32 + 4 + bytes.len());
        record.push(TAG_PUT);
        record.extend_from_slice(&hash.0);
        record.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        record.extend_from_slice(bytes);
        self.append(&record)?;
        self.nodes.insert(hash, bytes.to_vec());
        Ok(())
    }

    fn delete(&mut self, hash: &H256) -> Result<(), StoreError> {
        let mut record = Vec::with_capacity(1 + 32);
        record.push(TAG_DELETE);
        record.extend_from_slice(&hash.0);
        self.append(&record)?;
        self.nodes.remove(hash);
        Ok(())
    }

    fn sync(&mut self) -> Result<u64, StoreError> {
        self.file.sync_all()?;
        Ok(self.len)
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl NodeResolver for FileBackend {
    fn resolve_node(&self, hash: &H256) -> Option<Vec<u8>> {
        self.get(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_dir;

    fn h(i: u64) -> H256 {
        H256::from_low_u64(i)
    }

    #[test]
    fn memory_backend_put_get_delete() {
        let mut b = MemoryBackend::new();
        b.put(h(1), b"one").unwrap();
        b.put(h(2), b"two").unwrap();
        assert_eq!(b.get(&h(1)), Some(b"one".to_vec()));
        assert_eq!(b.node_count(), 2);
        b.delete(&h(1)).unwrap();
        assert_eq!(b.get(&h(1)), None);
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn file_backend_replays_committed_prefix() {
        let dir = test_dir("file-backend-replay");
        let path = dir.join("nodes.log");
        let committed;
        {
            let mut b = FileBackend::open(&path, 0).unwrap();
            b.put(h(1), b"one").unwrap();
            b.put(h(2), b"two").unwrap();
            b.delete(&h(1)).unwrap();
            committed = b.sync().unwrap();
            // An unsynced write after the sync point…
            b.put(h(3), b"three").unwrap();
        }
        // …is discarded when reopening at the committed length.
        let b = FileBackend::open(&path, committed).unwrap();
        assert_eq!(b.get(&h(1)), None);
        assert_eq!(b.get(&h(2)), Some(b"two".to_vec()));
        assert_eq!(b.get(&h(3)), None);
        assert_eq!(b.node_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_rejects_log_shorter_than_committed() {
        let dir = test_dir("file-backend-short");
        let path = dir.join("nodes.log");
        {
            let mut b = FileBackend::open(&path, 0).unwrap();
            b.put(h(1), b"one").unwrap();
            b.sync().unwrap();
        }
        let err = FileBackend::open(&path, 10_000).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
