//! Append-only block file.
//!
//! Blocks are stored as length-prefixed RLP segments — `len(u32 BE)`
//! followed by `bp_block::encode_block` bytes — with an in-memory
//! hash → `(offset, len)` index rebuilt by scanning the committed prefix on
//! open. The log itself carries no commitment; the manifest records the
//! durable length, so a torn final record is simply cut off on reopen and
//! can never surface as a partial block.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

use bp_block::{decode_block, encode_block, Block};
use bp_types::BlockHash;

use crate::StoreError;

/// The append-only block log plus its offset index.
#[derive(Debug)]
pub struct BlockLog {
    file: File,
    /// hash → (payload offset, payload length).
    index: HashMap<BlockHash, (u64, u32)>,
    /// Byte length including not-yet-synced appends.
    len: u64,
}

impl BlockLog {
    /// Opens (or creates) the log at `path`, trusting exactly the first
    /// `committed_len` bytes; any longer tail is an unsynced remnant and is
    /// truncated away before indexing.
    pub fn open(path: &Path, committed_len: u64) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let actual = file.metadata()?.len();
        if actual < committed_len {
            return Err(StoreError::Corrupt(format!(
                "block log {} shorter ({actual}) than committed length {committed_len}",
                path.display()
            )));
        }
        if actual > committed_len {
            file.set_len(committed_len)?;
        }
        file.seek(SeekFrom::Start(0))?;
        let mut data = Vec::with_capacity(committed_len as usize);
        file.read_to_end(&mut data)?;
        let index = scan(&data, path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(BlockLog {
            file,
            index,
            len: committed_len,
        })
    }

    /// Appends a block (buffered in the OS; durable after [`BlockLog::sync`]).
    /// Re-appending a known hash is a no-op — the first copy stays
    /// authoritative.
    pub fn append(&mut self, block: &Block) -> Result<(), StoreError> {
        let hash = block.hash();
        if self.index.contains_key(&hash) {
            return Ok(());
        }
        let payload = encode_block(block);
        let mut record = Vec::with_capacity(4 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.index
            .insert(hash, (self.len + 4, payload.len() as u32));
        self.len += record.len() as u64;
        Ok(())
    }

    /// Reads a block back by hash.
    pub fn get(&self, hash: &BlockHash) -> Result<Option<Block>, StoreError> {
        let Some(&(offset, len)) = self.index.get(hash) else {
            return Ok(None);
        };
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact_at(&mut payload, offset)?;
        let block = decode_block(&payload)
            .map_err(|e| StoreError::Corrupt(format!("block {hash:?} undecodable: {e}")))?;
        Ok(Some(block))
    }

    /// The raw encoded bytes of a block, if stored.
    pub fn get_raw(&self, hash: &BlockHash) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(&(offset, len)) = self.index.get(hash) else {
            return Ok(None);
        };
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact_at(&mut payload, offset)?;
        Ok(Some(payload))
    }

    /// True iff `hash` is stored.
    pub fn contains(&self, hash: &BlockHash) -> bool {
        self.index.contains_key(hash)
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Byte length of the log including not-yet-synced appends. The
    /// group-commit batcher reads this to size the pending batch without
    /// forcing an fsync.
    pub fn pending_len(&self) -> u64 {
        self.len
    }

    /// Makes all appends durable; returns the durable byte length for the
    /// manifest.
    pub fn sync(&mut self) -> Result<u64, StoreError> {
        self.file.sync_all()?;
        Ok(self.len)
    }
}

/// Scans a committed log prefix, indexing every record by block hash.
fn scan(data: &[u8], path: &Path) -> Result<HashMap<BlockHash, (u64, u32)>, StoreError> {
    let corrupt =
        |what: String| StoreError::Corrupt(format!("block log {}: {what}", path.display()));
    let mut index = HashMap::new();
    let mut at = 0usize;
    while at < data.len() {
        let len_bytes = data
            .get(at..at + 4)
            .ok_or_else(|| corrupt("truncated record length".into()))?;
        let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let payload = data
            .get(at + 4..at + 4 + len)
            .ok_or_else(|| corrupt("truncated record body".into()))?;
        let block =
            decode_block(payload).map_err(|e| corrupt(format!("undecodable block: {e}")))?;
        index.insert(block.hash(), ((at + 4) as u64, len as u32));
        at += 4 + len;
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_dir;
    use bp_block::{genesis_header, BlockProfile};
    use bp_types::H256;

    fn block(height: u64, seed: u64) -> Block {
        let mut header = genesis_header(H256::from_low_u64(height + 1));
        header.height = height;
        header.proposer_seed = seed;
        Block {
            header,
            transactions: vec![],
            profile: BlockProfile::new(),
        }
    }

    #[test]
    fn append_get_roundtrip() {
        let dir = test_dir("blocklog-roundtrip");
        let path = dir.join("blocks.log");
        let mut log = BlockLog::open(&path, 0).unwrap();
        let b0 = block(0, 0);
        let b1 = block(1, 7);
        log.append(&b0).unwrap();
        log.append(&b1).unwrap();
        assert_eq!(log.get(&b0.hash()).unwrap().unwrap(), b0);
        assert_eq!(log.get(&b1.hash()).unwrap().unwrap(), b1);
        assert_eq!(log.get(&H256::from_low_u64(999)).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_append_is_idempotent() {
        let dir = test_dir("blocklog-dup");
        let path = dir.join("blocks.log");
        let mut log = BlockLog::open(&path, 0).unwrap();
        let b = block(3, 1);
        log.append(&b).unwrap();
        let len_once = log.sync().unwrap();
        log.append(&b).unwrap();
        assert_eq!(log.sync().unwrap(), len_once);
        assert_eq!(log.block_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_discards_unsynced_tail() {
        let dir = test_dir("blocklog-tail");
        let path = dir.join("blocks.log");
        let b0 = block(0, 0);
        let b1 = block(1, 0);
        let committed;
        {
            let mut log = BlockLog::open(&path, 0).unwrap();
            log.append(&b0).unwrap();
            committed = log.sync().unwrap();
            log.append(&b1).unwrap();
        }
        let log = BlockLog::open(&path, committed).unwrap();
        assert!(log.contains(&b0.hash()));
        assert!(!log.contains(&b1.hash()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
