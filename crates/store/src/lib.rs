//! Persistent block and state storage with crash-safe commit.
//!
//! Everything above this crate — chain store, world state, MPT — is purely
//! in-memory; `bp-store` gives a node durability and cold-start recovery:
//!
//! * [`blocklog`] — an append-only block file of length-prefixed RLP
//!   segments (`bp_block::encode_block`) with an in-memory hash → offset
//!   index;
//! * [`backend`] — the [`NodeBackend`] trait over which MPT nodes persist,
//!   with an in-memory and an append-only on-disk implementation;
//! * [`nodestore`] — per-root reference counting on top of a backend, so
//!   committing a state root retains exactly its reachable nodes and
//!   [`NodeStore::prune`] releases them symmetrically;
//! * [`manifest`] — the crash-safety core: a dual-slot write-ahead manifest
//!   recording head hash, durable file lengths, and retained roots. Data
//!   files are fsynced *before* the manifest swaps, so a kill at any byte
//!   boundary recovers to the last durable head;
//! * [`snapshot`] — a checksummed RLP snapshot of the genesis
//!   [`bp_state::WorldState`], the anchor cold-start replay executes from;
//! * [`store`] — the [`Store`] facade tying the pieces together:
//!   `open → put_block/commit_root → commit(head)` with
//!   [`Store::canonical_chain`] replaying the durable chain after a restart.
//!
//! ## Commit protocol
//!
//! 1. append block and node records to their logs (buffered, not yet
//!    durable);
//! 2. [`Store::commit`]: flush + `fsync` both logs, then write a manifest
//!    `{generation, head, blocks_len, nodes_len, roots, checksum}` to the
//!    *older* of two slots and fsync it (ping-pong swap).
//!
//! [`Store::open`] picks the newest manifest whose checksum verifies **and**
//! whose recorded lengths fit the data files, truncates the logs to those
//! lengths (discarding any torn tail), and rebuilds the node refcounts by
//! walking every retained root — which doubles as an integrity check.

#![warn(missing_docs)]

pub mod backend;
pub mod blocklog;
pub mod manifest;
pub mod nodestore;
pub mod snapshot;
pub mod store;

pub use backend::{FileBackend, MemoryBackend, NodeBackend};
pub use blocklog::BlockLog;
pub use manifest::ManifestData;
pub use nodestore::NodeStore;
pub use snapshot::{decode_world, encode_world};
pub use store::{GroupCommitConfig, Store, StoreConfig};

use bp_types::H256;

/// Failures across the storage subsystem.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A durable structure failed its checksum or decode — the store cannot
    /// vouch for the data.
    Corrupt(String),
    /// A trie walk met a node the backend does not hold.
    MissingNode(H256),
    /// A root was asked to be pruned but is not retained.
    UnknownRoot(H256),
    /// A block referenced by the manifest is not in the block log.
    MissingBlock(H256),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage io error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::MissingNode(h) => write!(f, "missing trie node {h:?}"),
            StoreError::UnknownRoot(h) => write!(f, "root {h:?} is not retained"),
            StoreError::MissingBlock(h) => write!(f, "missing block {h:?}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<bp_snap::SnapError> for StoreError {
    fn from(e: bp_snap::SnapError) -> Self {
        match e {
            bp_snap::SnapError::Io(io) => StoreError::Io(io),
            bp_snap::SnapError::Corrupt(msg) => StoreError::Corrupt(format!("snapshot: {msg}")),
            bp_snap::SnapError::UnknownRoot(root) => StoreError::UnknownRoot(root),
        }
    }
}
