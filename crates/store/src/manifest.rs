//! Crash-safe manifest: the store's single source of durable truth.
//!
//! A manifest records the committed head, the durable byte lengths of the
//! block and node logs, and the retained state roots. Two slots
//! (`manifest.0`, `manifest.1`) are written alternately — always the one
//! *not* holding the current manifest — each protected by a trailing keccak
//! checksum and stamped with a monotonically increasing generation.
//!
//! The swap is atomic in effect without a rename: a crash mid-write corrupts
//! only the slot being written, whose checksum then fails, and the previous
//! generation in the other slot remains authoritative. On open, the newest
//! slot that (a) passes its checksum and (b) records lengths no longer than
//! the actual data files wins; (b) is what lets a store whose *data* file
//! lost its tail (torn final record) fall back a generation instead of
//! trusting a manifest that points past the end of the file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bp_crypto::{keccak256, rlp, RlpStream};
use bp_types::{BlockHash, H256};

use crate::StoreError;

/// One durable commit point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestData {
    /// Monotonic commit counter; the larger generation wins on open.
    pub generation: u64,
    /// The committed canonical head (`None` before genesis is initialized).
    pub head: Option<BlockHash>,
    /// Durable byte length of `blocks.log` at commit time.
    pub blocks_len: u64,
    /// Durable byte length of `nodes.log` at commit time.
    pub nodes_len: u64,
    /// Retained state roots, as a multiset (consecutive identical states —
    /// e.g. empty blocks — legitimately retain the same root twice).
    pub roots: Vec<H256>,
}

const SLOTS: [&str; 2] = ["manifest.0", "manifest.1"];

/// Path of manifest slot `slot` under `dir`.
pub fn slot_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(SLOTS[slot])
}

/// Serializes a manifest: RLP payload followed by its keccak checksum.
fn encode(data: &ManifestData) -> Vec<u8> {
    let mut s = RlpStream::new();
    s.begin_list(5);
    s.append_u64(data.generation);
    s.append_h256(&data.head.unwrap_or(BlockHash::ZERO));
    s.append_u64(data.blocks_len);
    s.append_u64(data.nodes_len);
    if data.roots.is_empty() {
        s.begin_list(0);
    } else {
        s.begin_list(data.roots.len());
        for r in &data.roots {
            s.append_h256(r);
        }
    }
    let mut out = s.out();
    let checksum = keccak256(&out);
    out.extend_from_slice(&checksum.0);
    out
}

/// Deserializes and checksum-verifies one slot's bytes.
fn decode(bytes: &[u8]) -> Option<ManifestData> {
    if bytes.len() < 32 {
        return None;
    }
    let (payload, checksum) = bytes.split_at(bytes.len() - 32);
    if keccak256(payload).0 != checksum {
        return None;
    }
    let item = rlp::decode(payload).ok()?;
    let list = item.as_list().ok()?;
    if list.len() != 5 {
        return None;
    }
    let generation = list[0].as_u64().ok()?;
    let head_raw = list[1].as_h256().ok()?;
    let head = if head_raw == BlockHash::ZERO {
        None
    } else {
        Some(head_raw)
    };
    let blocks_len = list[2].as_u64().ok()?;
    let nodes_len = list[3].as_u64().ok()?;
    let roots = list[4]
        .as_list()
        .ok()?
        .iter()
        .map(|r| r.as_h256().ok())
        .collect::<Option<Vec<_>>>()?;
    Some(ManifestData {
        generation,
        head,
        blocks_len,
        nodes_len,
        roots,
    })
}

/// Reads one slot, returning `None` for a missing, torn, or corrupt file —
/// all equivalent from the recovery protocol's point of view.
pub fn read_slot(dir: &Path, slot: usize) -> Option<ManifestData> {
    let mut bytes = Vec::new();
    File::open(slot_path(dir, slot))
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    decode(&bytes)
}

/// Durably writes `data` into `slot`: write, fsync the file, then fsync the
/// directory so the entry itself survives a crash.
pub fn write_slot(dir: &Path, slot: usize, data: &ManifestData) -> Result<(), StoreError> {
    let path = slot_path(dir, slot);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)?;
    file.write_all(&encode(data))?;
    file.sync_all()?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Loads both slots and picks the authoritative manifest: highest generation
/// whose recorded lengths fit the actual data files. Returns the winner (if
/// any), plus the slot index and generation the *next* commit must use.
pub fn load(
    dir: &Path,
    blocks_actual: u64,
    nodes_actual: u64,
) -> (Option<ManifestData>, usize, u64) {
    let slots = [read_slot(dir, 0), read_slot(dir, 1)];
    let max_gen = slots
        .iter()
        .flatten()
        .map(|m| m.generation)
        .max()
        .unwrap_or(0);
    let mut candidates: Vec<(usize, ManifestData)> = slots
        .into_iter()
        .enumerate()
        .filter_map(|(i, m)| m.map(|m| (i, m)))
        .collect();
    candidates.sort_by_key(|(_, m)| std::cmp::Reverse(m.generation));
    let active = candidates
        .into_iter()
        .find(|(_, m)| m.blocks_len <= blocks_actual && m.nodes_len <= nodes_actual);
    match active {
        Some((slot, data)) => (Some(data), 1 - slot, max_gen + 1),
        None => (None, 0, max_gen + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_dir;

    fn manifest(generation: u64, blocks_len: u64) -> ManifestData {
        ManifestData {
            generation,
            head: Some(H256::from_low_u64(generation)),
            blocks_len,
            nodes_len: 10,
            roots: vec![H256::from_low_u64(1), H256::from_low_u64(1)],
        }
    }

    #[test]
    fn roundtrip_through_slot_files() {
        let dir = test_dir("manifest-roundtrip");
        let data = manifest(3, 100);
        write_slot(&dir, 0, &data).unwrap();
        assert_eq!(read_slot(&dir, 0), Some(data));
        assert_eq!(read_slot(&dir, 1), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_slot_is_ignored() {
        let dir = test_dir("manifest-corrupt");
        let data = manifest(1, 50);
        write_slot(&dir, 0, &data).unwrap();
        // Flip a payload byte: checksum fails, slot reads as absent.
        let path = slot_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_slot(&dir, 0), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_prefers_newest_fitting_generation() {
        let dir = test_dir("manifest-load");
        write_slot(&dir, 0, &manifest(1, 50)).unwrap();
        write_slot(&dir, 1, &manifest(2, 80)).unwrap();
        // Both fit: generation 2 wins, next write goes to slot 0.
        let (active, next_slot, next_gen) = load(&dir, 100, 10);
        assert_eq!(active.as_ref().unwrap().generation, 2);
        assert_eq!(next_slot, 0);
        assert_eq!(next_gen, 3);
        // Data file truncated below generation 2's length: fall back to 1,
        // but the next generation still exceeds every slot on disk.
        let (active, next_slot, next_gen) = load(&dir, 60, 10);
        assert_eq!(active.as_ref().unwrap().generation, 1);
        assert_eq!(next_slot, 1);
        assert_eq!(next_gen, 3);
        // Truncated below both: nothing is trustworthy.
        let (active, _, _) = load(&dir, 10, 10);
        assert_eq!(active, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
