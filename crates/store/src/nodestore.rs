//! Reference-counted trie node storage.
//!
//! A [`NodeStore`] retains, per committed state root, every MPT node
//! reachable from it — account-trie nodes *and*, by decoding account bodies
//! found in leaf values, the nodes of each storage trie. Counting is
//! per-reference, matching [`bp_state::Trie::commit_nodes`]'s per-reference
//! emission: committing a root increments each reachable node once per path
//! from that root, and [`NodeStore::prune`] performs the mirror-image walk,
//! deleting nodes whose count reaches zero. A node shared by several
//! retained roots therefore survives until the last of them is pruned.
//!
//! On cold start the counts are rebuilt by walking every retained root —
//! which doubles as an integrity check: a missing node surfaces as
//! [`StoreError::MissingNode`] instead of a latent read failure later.

use std::collections::HashMap;

use bp_state::{empty_root, summarize_node, Account, NodeResolver, Trie};
use bp_types::H256;

use crate::backend::NodeBackend;
use crate::StoreError;

/// Refcounted node storage over a pluggable backend.
#[derive(Debug)]
pub struct NodeStore<B> {
    backend: B,
    refcounts: HashMap<H256, u64>,
    /// Retained roots as a multiset (the same root may be committed for
    /// consecutive identical states, e.g. empty blocks).
    roots: Vec<H256>,
}

impl<B: NodeBackend> NodeStore<B> {
    /// An empty store over `backend` (which must hold no retained state).
    pub fn new(backend: B) -> Self {
        NodeStore {
            backend,
            refcounts: HashMap::new(),
            roots: Vec::new(),
        }
    }

    /// Rebuilds refcounts for a backend already holding node data — the
    /// cold-start path. Every root in `roots` is walked per-reference; a
    /// node missing along any walk fails the open.
    pub fn rebuild(backend: B, roots: Vec<H256>) -> Result<Self, StoreError> {
        let mut store = NodeStore {
            backend,
            refcounts: HashMap::new(),
            roots: Vec::new(),
        };
        for root in roots {
            let refs = store.walk_refs(root)?;
            for h in refs {
                *store.refcounts.entry(h).or_insert(0) += 1;
            }
            store.roots.push(root);
        }
        Ok(store)
    }

    /// Retains `root`, storing `nodes` — the per-reference `(hash, bytes)`
    /// list from [`bp_state::WorldState::commit_tries`] (or
    /// [`bp_state::Trie::commit_nodes`]). Each listed reference bumps its
    /// node's count; first references write the bytes to the backend.
    pub fn commit_root(&mut self, root: H256, nodes: &[(H256, Vec<u8>)]) -> Result<(), StoreError> {
        for (hash, bytes) in nodes {
            let rc = self.refcounts.entry(*hash).or_insert(0);
            *rc += 1;
            if *rc == 1 {
                self.backend.put(*hash, bytes)?;
            }
        }
        self.roots.push(root);
        Ok(())
    }

    /// Releases one retention of `root`: the mirror walk of
    /// [`NodeStore::commit_root`], deleting nodes whose count drops to zero.
    pub fn prune(&mut self, root: H256) -> Result<(), StoreError> {
        let pos = self
            .roots
            .iter()
            .position(|r| *r == root)
            .ok_or(StoreError::UnknownRoot(root))?;
        // Collect the full per-reference list *before* mutating, so the walk
        // reads a consistent backend.
        let refs = self.walk_refs(root)?;
        // Order-preserving removal: `roots` stays in commit (chronological)
        // order so retention windows can prune oldest-first.
        self.roots.remove(pos);
        for h in refs {
            match self.refcounts.get_mut(&h) {
                Some(rc) if *rc > 1 => *rc -= 1,
                Some(_) => {
                    self.refcounts.remove(&h);
                    self.backend.delete(&h)?;
                }
                None => {
                    return Err(StoreError::Corrupt(format!(
                        "refcount underflow for node {h:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Every hash reachable from `root`, listed once per reference: the
    /// account trie's nodes, plus — for each leaf value that decodes as an
    /// account body — the nodes of that account's storage trie.
    fn walk_refs(&self, root: H256) -> Result<Vec<H256>, StoreError> {
        let mut refs = Vec::new();
        let mut stack = Vec::new();
        if root != empty_root() {
            stack.push(root);
        }
        while let Some(h) = stack.pop() {
            refs.push(h);
            let bytes = self.backend.get(&h).ok_or(StoreError::MissingNode(h))?;
            let summary = summarize_node(&bytes)
                .map_err(|e| StoreError::Corrupt(format!("node {h:?}: {e}")))?;
            stack.extend(summary.children);
            for value in summary.values {
                // Account bodies are RLP 4-lists; storage values are byte
                // strings — decoding disambiguates them unambiguously.
                if let Ok(account) = Account::rlp_decode(&value) {
                    if account.storage_root != empty_root() {
                        stack.push(account.storage_root);
                    }
                }
            }
        }
        Ok(refs)
    }

    /// Materializes the trie rooted at `root` from stored nodes.
    pub fn open_trie(&self, root: H256) -> Result<Trie, StoreError> {
        Trie::from_root(root, self).map_err(|e| match e {
            bp_state::TrieLoadError::MissingNode(h) => StoreError::MissingNode(h),
            other => StoreError::Corrupt(format!("trie load: {other}")),
        })
    }

    /// True iff `root` is currently retained (at least once).
    pub fn contains_root(&self, root: &H256) -> bool {
        *root == empty_root() || self.roots.contains(root)
    }

    /// The retained root multiset.
    pub fn roots(&self) -> &[H256] {
        &self.roots
    }

    /// Number of distinct stored nodes.
    pub fn node_count(&self) -> usize {
        self.backend.node_count()
    }

    /// Flushes the backend; returns its durable log length.
    pub fn sync(&mut self) -> Result<u64, StoreError> {
        self.backend.sync()
    }

    /// Read access to the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }
}

impl<B: NodeBackend> NodeResolver for NodeStore<B> {
    fn resolve_node(&self, hash: &H256) -> Option<Vec<u8>> {
        self.backend.get(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use bp_state::WorldState;
    use bp_types::{Address, U256};

    fn world(n: u64, offset: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 0..n {
            let a = Address::from_index(i);
            w.set_balance(a, U256::from(100 + offset + i));
            if i % 3 == 0 {
                w.set_storage(a, H256::from_low_u64(i), U256::from(offset + i + 1));
            }
        }
        w
    }

    #[test]
    fn commit_then_prune_leaves_store_empty() {
        let mut store = NodeStore::new(MemoryBackend::new());
        let w = world(30, 0);
        let (root, nodes) = w.commit_tries();
        store.commit_root(root, &nodes).unwrap();
        assert!(store.contains_root(&root));
        assert!(store.node_count() > 0);
        let opened = store.open_trie(root).unwrap();
        assert_eq!(opened.root_hash(), root);
        store.prune(root).unwrap();
        assert_eq!(store.node_count(), 0);
        assert!(!store.contains_root(&root));
        assert!(store.refcounts.is_empty());
    }

    #[test]
    fn shared_nodes_survive_until_last_root_pruned() {
        let mut store = NodeStore::new(MemoryBackend::new());
        let w1 = world(40, 0);
        let mut w2 = w1.clone();
        // Small delta: most of the trie is shared between the two roots.
        w2.set_balance(Address::from_index(0), U256::from(999u64));
        let (r1, n1) = w1.commit_tries();
        let (r2, n2) = w2.commit_tries();
        assert_ne!(r1, r2);
        store.commit_root(r1, &n1).unwrap();
        store.commit_root(r2, &n2).unwrap();
        store.prune(r1).unwrap();
        // r2 must remain fully resolvable after r1's release.
        let opened = store.open_trie(r2).unwrap();
        assert_eq!(opened.root_hash(), r2);
        store.prune(r2).unwrap();
        assert_eq!(store.node_count(), 0);
    }

    #[test]
    fn duplicate_root_commits_prune_independently() {
        let mut store = NodeStore::new(MemoryBackend::new());
        let (root, nodes) = world(10, 0).commit_tries();
        store.commit_root(root, &nodes).unwrap();
        store.commit_root(root, &nodes).unwrap();
        store.prune(root).unwrap();
        assert!(store.contains_root(&root));
        assert_eq!(store.open_trie(root).unwrap().root_hash(), root);
        store.prune(root).unwrap();
        assert_eq!(store.node_count(), 0);
    }

    #[test]
    fn prune_unknown_root_errors() {
        let mut store: NodeStore<MemoryBackend> = NodeStore::new(MemoryBackend::new());
        let err = store.prune(H256::from_low_u64(42)).unwrap_err();
        assert!(matches!(err, StoreError::UnknownRoot(_)));
    }

    #[test]
    fn rebuild_reproduces_refcounts() {
        let mut store = NodeStore::new(MemoryBackend::new());
        let w1 = world(25, 0);
        let mut w2 = w1.clone();
        w2.set_nonce(Address::from_index(3), 9);
        let (r1, n1) = w1.commit_tries();
        let (r2, n2) = w2.commit_tries();
        store.commit_root(r1, &n1).unwrap();
        store.commit_root(r2, &n2).unwrap();
        let mut counts: Vec<(H256, u64)> = store.refcounts.iter().map(|(h, c)| (*h, *c)).collect();
        counts.sort();
        // Rebuild from the backend contents + root list alone.
        let rebuilt = NodeStore::rebuild(store.backend.clone(), store.roots.clone()).unwrap();
        let mut rebuilt_counts: Vec<(H256, u64)> =
            rebuilt.refcounts.iter().map(|(h, c)| (*h, *c)).collect();
        rebuilt_counts.sort();
        assert_eq!(counts, rebuilt_counts);
    }

    #[test]
    fn rebuild_detects_missing_node() {
        let mut store = NodeStore::new(MemoryBackend::new());
        let (root, nodes) = world(25, 0).commit_tries();
        store.commit_root(root, &nodes).unwrap();
        let mut backend = store.backend.clone();
        let victim = *store.refcounts.keys().find(|h| **h != root).unwrap();
        backend.delete(&victim).unwrap();
        let err = NodeStore::rebuild(backend, vec![root]).unwrap_err();
        assert!(matches!(err, StoreError::MissingNode(h) if h == victim));
    }

    #[test]
    fn empty_root_commit_and_prune_are_noops() {
        let mut store = NodeStore::new(MemoryBackend::new());
        let (root, nodes) = WorldState::new().commit_tries();
        assert_eq!(root, empty_root());
        assert!(nodes.is_empty());
        store.commit_root(root, &nodes).unwrap();
        assert!(store.contains_root(&root));
        store.prune(root).unwrap();
        assert_eq!(store.node_count(), 0);
    }
}
