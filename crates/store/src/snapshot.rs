//! Checksummed world-state snapshots.
//!
//! Secure-MPT keys are keccak-hashed, so a flat [`WorldState`] cannot be
//! reconstructed from trie nodes alone; cold-start recovery instead replays
//! the canonical chain from the genesis state. This module encodes that
//! anchor state as a deterministic (address- and slot-sorted) RLP document
//! with a trailing keccak checksum.

use bp_crypto::{keccak256, rlp, RlpStream};
use bp_state::WorldState;
use bp_types::{Address, H256};

use crate::StoreError;

/// Serializes a world state: sorted account list, keccak checksum appended.
pub fn encode_world(world: &WorldState) -> Vec<u8> {
    let mut accounts: Vec<(&Address, _)> = world.accounts().collect();
    accounts.sort_by_key(|(addr, _)| **addr);
    let mut s = RlpStream::new();
    if accounts.is_empty() {
        s.begin_list(0);
    } else {
        s.begin_list(accounts.len());
        for (addr, acct) in accounts {
            let mut storage: Vec<(&H256, _)> = acct.storage.iter().collect();
            storage.sort_by_key(|(slot, _)| **slot);
            s.begin_list(5);
            s.append_address(addr);
            s.append_u64(acct.nonce);
            s.append_u256(&acct.balance);
            s.append_bytes(&acct.code);
            if storage.is_empty() {
                s.begin_list(0);
            } else {
                s.begin_list(storage.len());
                for (slot, value) in storage {
                    s.begin_list(2);
                    s.append_h256(slot);
                    s.append_u256(value);
                }
            }
        }
    }
    let mut out = s.out();
    let checksum = keccak256(&out);
    out.extend_from_slice(&checksum.0);
    out
}

/// Deserializes a snapshot written by [`encode_world`], verifying the
/// checksum.
pub fn decode_world(bytes: &[u8]) -> Result<WorldState, StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("world snapshot: {what}"));
    if bytes.len() < 32 {
        return Err(corrupt("shorter than its checksum"));
    }
    let (payload, checksum) = bytes.split_at(bytes.len() - 32);
    if keccak256(payload).0 != checksum {
        return Err(corrupt("checksum mismatch"));
    }
    let item = rlp::decode(payload).map_err(|_| corrupt("undecodable payload"))?;
    let accounts = item.as_list().map_err(|_| corrupt("not a list"))?;
    let mut world = WorldState::new();
    for entry in accounts {
        let fields = entry.as_list().map_err(|_| corrupt("account not a list"))?;
        if fields.len() != 5 {
            return Err(corrupt("account field count"));
        }
        let addr = fields[0].as_address().map_err(|_| corrupt("address"))?;
        let acct = world.account_mut(addr);
        acct.nonce = fields[1].as_u64().map_err(|_| corrupt("nonce"))?;
        acct.balance = fields[2].as_u256().map_err(|_| corrupt("balance"))?;
        let code = fields[3].as_bytes().map_err(|_| corrupt("code"))?;
        if !code.is_empty() {
            acct.install_code(std::sync::Arc::new(code.to_vec()));
        }
        for slot_entry in fields[4].as_list().map_err(|_| corrupt("storage"))? {
            let kv = slot_entry.as_list().map_err(|_| corrupt("storage entry"))?;
            if kv.len() != 2 {
                return Err(corrupt("storage entry arity"));
            }
            let slot = kv[0].as_h256().map_err(|_| corrupt("storage slot"))?;
            let value = kv[1].as_u256().map_err(|_| corrupt("storage value"))?;
            acct.storage.insert(slot, value);
        }
    }
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::U256;

    fn fixture() -> WorldState {
        let mut w = WorldState::new();
        for i in 0..25u64 {
            let a = Address::from_index(i);
            w.set_balance(a, U256::from(1_000 + i));
            w.set_nonce(a, i);
            if i % 4 == 0 {
                w.set_storage(a, H256::from_low_u64(i), U256::from(i + 1));
                w.set_storage(a, H256::from_low_u64(i + 9), U256::from(2 * i + 1));
            }
            if i % 7 == 0 {
                w.set_code(a, vec![0x60, i as u8]);
            }
        }
        w
    }

    #[test]
    fn roundtrip_preserves_state_root() {
        let w = fixture();
        let bytes = encode_world(&w);
        let decoded = decode_world(&bytes).unwrap();
        assert_eq!(decoded, w);
        assert_eq!(decoded.state_root(), w.state_root());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_world(&fixture()), encode_world(&fixture()));
    }

    #[test]
    fn tampered_snapshot_rejected() {
        let mut bytes = encode_world(&fixture());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(decode_world(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn empty_world_roundtrips() {
        let w = WorldState::new();
        let decoded = decode_world(&encode_world(&w)).unwrap();
        assert_eq!(decoded, w);
    }
}
