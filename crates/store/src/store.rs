//! The [`Store`] facade: one directory holding a node's durable chain.
//!
//! ```text
//! <dir>/blocks.log   append-only length-prefixed RLP blocks
//! <dir>/nodes.log    append-only MPT node put/delete records
//! <dir>/genesis.bin  checksummed genesis world-state snapshot
//! <dir>/manifest.0   ┐ dual-slot crash-safe manifest
//! <dir>/manifest.1   ┘ (head, durable lengths, retained roots)
//! ```
//!
//! Writes accumulate in the logs; [`Store::commit`] makes them durable
//! (fsync data, then swap the manifest). [`Store::open`] recovers to the
//! newest manifest consistent with the data files, so a crash at any byte
//! boundary rolls back to the last completed commit — never a torn block or
//! dangling root.

use std::path::{Path, PathBuf};

use bp_block::Block;
use bp_snap::SnapTree;
use bp_state::{StateDelta, Trie, WorldState};
use bp_types::{BlockHash, H256};

use crate::backend::FileBackend;
use crate::blocklog::BlockLog;
use crate::manifest::{self, ManifestData};
use crate::nodestore::NodeStore;
use crate::snapshot::{decode_world, encode_world};
use crate::StoreError;

const BLOCKS_FILE: &str = "blocks.log";
const NODES_FILE: &str = "nodes.log";
const GENESIS_FILE: &str = "genesis.bin";
const SNAP_DIR: &str = "snap";

/// Bounds for coalescing consecutive [`Store::commit`]s into one fsync
/// batch. A batch closes (and durably lands) as soon as *either* bound is
/// reached, or on an explicit [`Store::flush`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Close the batch after this many deferred commits (1 degenerates to
    /// per-commit fsync; 0 is treated as 1).
    pub max_blocks: usize,
    /// Close the batch once the bytes appended since the last boundary
    /// (block log + node log + snapshot layer journal) reach this bound, so
    /// a burst of heavy blocks cannot grow the at-risk window unboundedly.
    pub max_bytes: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_blocks: 8,
            max_bytes: 4 << 20,
        }
    }
}

/// Tunables for a [`Store`].
#[derive(Clone, Debug, Default)]
pub struct StoreConfig {
    /// Keep only the newest `K` retained state roots: each
    /// [`Store::commit`] prunes trie roots (and flattens snapshot diff
    /// layers) past the window, oldest first. `None` (the default) keeps
    /// everything.
    pub retention_window: Option<usize>,
    /// Maintain a persistent [`SnapTree`] (layered flat state) under
    /// `<dir>/snap`, giving execution a disk-backed read path that does not
    /// require the whole state resident in memory.
    pub snapshots: bool,
    /// Coalesce consecutive commits into one fsync batch. `None` (the
    /// default) keeps the classic commit-per-block durability: every
    /// [`Store::commit`] fsyncs and swaps the manifest. With a config set,
    /// commits inside a batch only advance the in-memory head; the batch
    /// boundary runs the full durable path, and a crash mid-batch rolls the
    /// store back to the last boundary (never a torn record).
    pub group_commit: Option<GroupCommitConfig>,
}

/// A node's persistent block/state store.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    blocks: BlockLog,
    nodes: NodeStore<FileBackend>,
    head: Option<BlockHash>,
    genesis_state: Option<WorldState>,
    next_slot: usize,
    next_generation: u64,
    config: StoreConfig,
    snaps: Option<SnapTree>,
    /// Commits deferred since the last durable batch boundary (always 0
    /// without group commit).
    pending_commits: usize,
    /// Total log bytes (blocks + nodes + snap journal) at the last durable
    /// boundary; the difference to the current totals sizes the open batch.
    batch_base_bytes: u64,
}

impl Store {
    /// Opens the store in `dir` with default configuration (no retention
    /// window, no snapshot tree). See [`Store::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(dir, StoreConfig::default())
    }

    /// Opens the store in `dir` (created if absent), replaying the manifest:
    /// data logs are truncated to their committed lengths and node refcounts
    /// rebuilt by walking every retained root. With `config.snapshots` the
    /// layered flat state under `<dir>/snap` is recovered alongside.
    pub fn open_with(dir: impl AsRef<Path>, config: StoreConfig) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let blocks_path = dir.join(BLOCKS_FILE);
        let nodes_path = dir.join(NODES_FILE);
        let blocks_actual = file_len(&blocks_path)?;
        let nodes_actual = file_len(&nodes_path)?;
        let (active, next_slot, next_generation) =
            manifest::load(&dir, blocks_actual, nodes_actual);
        if active.is_none() && next_generation > 1 {
            return Err(StoreError::Corrupt(
                "manifests present but none consistent with the data files".into(),
            ));
        }
        let (head, blocks_len, nodes_len, roots) = match &active {
            Some(m) => (m.head, m.blocks_len, m.nodes_len, m.roots.clone()),
            None => (None, 0, 0, Vec::new()),
        };
        let blocks = BlockLog::open(&blocks_path, blocks_len)?;
        let backend = FileBackend::open(&nodes_path, nodes_len)?;
        let nodes = NodeStore::rebuild(backend, roots)?;
        if let Some(h) = head {
            if !blocks.contains(&h) {
                return Err(StoreError::MissingBlock(h));
            }
        }
        let genesis_state = match std::fs::read(dir.join(GENESIS_FILE)) {
            Ok(bytes) => Some(decode_world(&bytes)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let snaps = if config.snapshots {
            let snaps = SnapTree::open(&dir.join(SNAP_DIR))?;
            if config.group_commit.is_some() {
                snaps.set_deferred_sync(true);
            }
            Some(snaps)
        } else {
            None
        };
        let batch_base_bytes =
            blocks_len + nodes_len + snaps.as_ref().map(|s| s.journal_len()).unwrap_or(0);
        Ok(Store {
            dir,
            blocks,
            nodes,
            head,
            genesis_state,
            next_slot,
            next_generation,
            config,
            snaps,
            pending_commits: 0,
            batch_base_bytes,
        })
    }

    /// True once [`Store::initialize`] has run (possibly in a prior life).
    pub fn is_initialized(&self) -> bool {
        self.genesis_state.is_some() && self.head.is_some()
    }

    /// Anchors a fresh store: durably snapshots the genesis state, persists
    /// the genesis block and its state's trie nodes, and commits the
    /// manifest with the genesis block as head.
    pub fn initialize(
        &mut self,
        genesis_state: &WorldState,
        genesis_block: &Block,
    ) -> Result<(), StoreError> {
        if self.is_initialized() {
            return Err(StoreError::Corrupt("store already initialized".into()));
        }
        let snapshot_path = self.dir.join(GENESIS_FILE);
        std::fs::write(&snapshot_path, encode_world(genesis_state))?;
        std::fs::File::open(&snapshot_path)?.sync_all()?;
        std::fs::File::open(&self.dir)?.sync_all()?;
        self.genesis_state = Some(genesis_state.clone());
        self.put_block(genesis_block)?;
        let (root, nodes) = genesis_state.commit_tries();
        debug_assert_eq!(root, genesis_block.header.state_root);
        self.commit_root(root, &nodes)?;
        if let Some(snaps) = &self.snaps {
            snaps.seed(&genesis_state.full_delta(), root, 0)?;
        }
        // Genesis must be durable before the store is usable, even under
        // group commit.
        self.commit(genesis_block.hash())?;
        self.flush()
    }

    /// The genesis world-state snapshot, if initialized.
    pub fn genesis_state(&self) -> Option<&WorldState> {
        self.genesis_state.as_ref()
    }

    /// Appends a block to the log (durable after the next
    /// [`Store::commit`]).
    pub fn put_block(&mut self, block: &Block) -> Result<(), StoreError> {
        self.blocks.append(block)
    }

    /// Reads a block back by hash.
    pub fn get_block(&self, hash: &BlockHash) -> Result<Option<Block>, StoreError> {
        self.blocks.get(hash)
    }

    /// The raw stored encoding of a block.
    pub fn get_block_raw(&self, hash: &BlockHash) -> Result<Option<Vec<u8>>, StoreError> {
        self.blocks.get_raw(hash)
    }

    /// True iff `hash` is in the block log.
    pub fn has_block(&self, hash: &BlockHash) -> bool {
        self.blocks.contains(hash)
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.block_count()
    }

    /// Retains a state root's trie nodes (see
    /// [`NodeStore::commit_root`]); durable after the next
    /// [`Store::commit`].
    pub fn commit_root(&mut self, root: H256, nodes: &[(H256, Vec<u8>)]) -> Result<(), StoreError> {
        self.nodes.commit_root(root, nodes)
    }

    /// Releases one retention of `root`, deleting nodes no retained root
    /// still reaches.
    pub fn prune(&mut self, root: H256) -> Result<(), StoreError> {
        self.nodes.prune(root)
    }

    /// The crash-safe commit: fsync both logs, then atomically swap in a
    /// manifest recording `head`, the durable lengths, and the retained
    /// roots. On return the state up to `head` survives any crash.
    ///
    /// With a [`StoreConfig::retention_window`] set, roots older than the
    /// newest `K` are pruned first (trie nodes released, snapshot diff
    /// layers flattened into the flat base), so the manifest that lands
    /// already reflects the bounded retained set.
    ///
    /// With [`StoreConfig::group_commit`] set, the commit is *deferred*
    /// unless it closes the batch: the in-memory head advances but nothing
    /// is fsynced, and `Ok(())` means "will be durable at the next boundary
    /// or [`Store::flush`]". A crash mid-batch rolls back to the previous
    /// boundary's head.
    pub fn commit(&mut self, head: BlockHash) -> Result<(), StoreError> {
        if !self.blocks.contains(&head) {
            return Err(StoreError::MissingBlock(head));
        }
        if let Some(gc) = self.config.group_commit {
            self.pending_commits += 1;
            self.head = Some(head);
            let batch_bytes = self.total_log_bytes().saturating_sub(self.batch_base_bytes);
            if self.pending_commits < gc.max_blocks.max(1) && batch_bytes < gc.max_bytes {
                return Ok(());
            }
        }
        self.commit_boundary(head)
    }

    /// Closes any open group-commit batch, making every deferred commit
    /// durable. A no-op when nothing is pending. Call on shutdown (and
    /// before handing the directory to another process).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.pending_commits == 0 {
            return Ok(());
        }
        let head = self.head.expect("pending commits imply a head");
        self.commit_boundary(head)
    }

    /// Commits deferred in the currently open batch (0 without group
    /// commit).
    pub fn pending_commits(&self) -> usize {
        self.pending_commits
    }

    /// All appended log bytes, synced or not: block log + node log + snap
    /// layer journal.
    fn total_log_bytes(&self) -> u64 {
        self.blocks.pending_len()
            + self.nodes.backend().pending_len()
            + self.snaps.as_ref().map(|s| s.journal_len()).unwrap_or(0)
    }

    /// The full durable path: retention prune, data fsyncs (snap journal
    /// first, then the logs), manifest swap. Ordering matters — every byte
    /// the manifest's lengths describe must be durable before the
    /// generation swap publishes them.
    fn commit_boundary(&mut self, head: BlockHash) -> Result<(), StoreError> {
        if let Some(window) = self.config.retention_window {
            let window = window.max(1);
            while self.nodes.roots().len() > window {
                let oldest = self.nodes.roots()[0];
                self.nodes.prune(oldest)?;
            }
            if let Some(snaps) = &self.snaps {
                let head_root = self
                    .blocks
                    .get(&head)?
                    .ok_or(StoreError::MissingBlock(head))?
                    .header
                    .state_root;
                if snaps.has_root(head_root) {
                    snaps.retain(head_root, window)?;
                }
            }
        }
        if let Some(snaps) = &self.snaps {
            if self.config.group_commit.is_some() {
                // Deferred layer appends: fsync the journal and swap the
                // snap meta before the store manifest lands, so the snap
                // tree is never *behind* the manifest it supports. (Ahead
                // is benign: layers above the head reattach on replay.)
                snaps.sync()?;
            }
        }
        let blocks_len = self.blocks.sync()?;
        let nodes_len = self.nodes.sync()?;
        let data = ManifestData {
            generation: self.next_generation,
            head: Some(head),
            blocks_len,
            nodes_len,
            roots: self.nodes.roots().to_vec(),
        };
        manifest::write_slot(&self.dir, self.next_slot, &data)?;
        self.head = Some(head);
        self.next_slot = 1 - self.next_slot;
        self.next_generation += 1;
        self.pending_commits = 0;
        self.batch_base_bytes = self.total_log_bytes();
        Ok(())
    }

    /// The committed canonical head.
    pub fn head(&self) -> Option<BlockHash> {
        self.head
    }

    /// The committed canonical chain, genesis first, reconstructed by
    /// walking parent hashes down from the head.
    pub fn canonical_chain(&self) -> Result<Vec<Block>, StoreError> {
        let Some(head) = self.head else {
            return Ok(Vec::new());
        };
        let mut chain = Vec::new();
        let mut cursor = head;
        loop {
            let block = self
                .get_block(&cursor)?
                .ok_or(StoreError::MissingBlock(cursor))?;
            let parent = block.header.parent_hash;
            let height = block.height();
            chain.push(block);
            if height == 0 {
                break;
            }
            cursor = parent;
        }
        chain.reverse();
        Ok(chain)
    }

    /// Materializes the trie at a retained `root` from stored nodes.
    pub fn open_trie(&self, root: H256) -> Result<Trie, StoreError> {
        self.nodes.open_trie(root)
    }

    /// True iff `root` is currently retained.
    pub fn contains_root(&self, root: &H256) -> bool {
        self.nodes.contains_root(root)
    }

    /// The retained root multiset.
    pub fn roots(&self) -> &[H256] {
        self.nodes.roots()
    }

    /// Number of distinct stored trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.node_count()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying node store (e.g. to use as a
    /// [`bp_state::NodeResolver`]).
    pub fn node_store(&self) -> &NodeStore<FileBackend> {
        &self.nodes
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The layered flat-state tree, when [`StoreConfig::snapshots`] is on.
    /// The handle is cheap to clone and internally synchronized.
    pub fn snapshots(&self) -> Option<&SnapTree> {
        self.snaps.as_ref()
    }

    /// Registers one block's diff layer in the snapshot tree: `root` is the
    /// block's post-state root stacked on `parent` (the previous block's
    /// root). No-op `Ok(false)` when snapshots are off or the root is
    /// already covered (replays, empty blocks).
    pub fn snap_add_layer(
        &mut self,
        root: H256,
        parent: H256,
        height: u64,
        delta: StateDelta,
    ) -> Result<bool, StoreError> {
        match &self.snaps {
            Some(snaps) => Ok(snaps.add_layer(root, parent, height, delta)?),
            None => Ok(false),
        }
    }

    /// Rebuilds the snapshot tree from scratch: `delta` must be the full
    /// state at `root` (height 0 for genesis). Recovery calls this before
    /// replaying the chain, since replayed flattens must move forward in
    /// height from a fresh base.
    pub fn reset_snapshots(
        &mut self,
        delta: &StateDelta,
        root: H256,
        height: u64,
    ) -> Result<(), StoreError> {
        if let Some(snaps) = &self.snaps {
            snaps.reset(delta, root, height)?;
        }
        Ok(())
    }
}

fn file_len(path: &Path) -> Result<u64, StoreError> {
    match std::fs::metadata(path) {
        Ok(m) => Ok(m.len()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e.into()),
    }
}

/// A fresh scratch directory for tests and benches (recreated if left over
/// from a previous run).
#[doc(hidden)]
pub fn test_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("bp-store-{label}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_block::{genesis_header, BlockProfile};
    use bp_types::{Address, U256};

    fn genesis_world(n: u64) -> WorldState {
        let mut w = WorldState::new();
        for i in 1..=n {
            w.set_balance(Address::from_index(i), U256::from(1_000_000u64));
        }
        w
    }

    fn genesis_block(state: &WorldState) -> Block {
        Block {
            header: genesis_header(state.state_root()),
            transactions: vec![],
            profile: BlockProfile::new(),
        }
    }

    /// A child block over `parent` whose state adds one balance write.
    fn child_block(parent: &Block, state: &mut WorldState, seq: u64) -> Block {
        state.set_balance(Address::from_index(900 + seq), U256::from(seq + 1));
        let mut header = genesis_header(state.state_root());
        header.parent_hash = parent.hash();
        header.height = parent.height() + 1;
        header.proposer_seed = seq;
        Block {
            header,
            transactions: vec![],
            profile: BlockProfile::new(),
        }
    }

    #[test]
    fn fresh_store_is_uninitialized() {
        let dir = test_dir("store-fresh");
        let store = Store::open(&dir).unwrap();
        assert!(!store.is_initialized());
        assert_eq!(store.head(), None);
        assert!(store.canonical_chain().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn initialize_then_reopen_recovers_genesis() {
        let dir = test_dir("store-init");
        let world = genesis_world(5);
        let gblock = genesis_block(&world);
        {
            let mut store = Store::open(&dir).unwrap();
            store.initialize(&world, &gblock).unwrap();
            assert!(store.is_initialized());
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.head(), Some(gblock.hash()));
        assert_eq!(
            store.genesis_state().unwrap().state_root(),
            world.state_root()
        );
        let chain = store.canonical_chain().unwrap();
        assert_eq!(chain, vec![gblock]);
        assert!(store.contains_root(&world.state_root()));
        let trie = store.open_trie(world.state_root()).unwrap();
        assert_eq!(trie.root_hash(), world.state_root());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_writes_do_not_survive_reopen() {
        let dir = test_dir("store-uncommitted");
        let mut world = genesis_world(5);
        let gblock = genesis_block(&world);
        let orphan = {
            let mut store = Store::open(&dir).unwrap();
            store.initialize(&world, &gblock).unwrap();
            let b1 = child_block(&gblock, &mut world, 1);
            store.put_block(&b1).unwrap();
            let (root, nodes) = world.commit_tries();
            store.commit_root(root, &nodes).unwrap();
            // No commit(): block + nodes stay in the unsynced tail.
            b1
        };
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.head(), Some(gblock.hash()));
        assert!(!store.has_block(&orphan.hash()));
        assert!(!store.contains_root(&orphan.header.state_root));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_of_commits_reopens_to_latest_head() {
        let dir = test_dir("store-chain");
        let mut world = genesis_world(8);
        let gblock = genesis_block(&world);
        let mut blocks = vec![gblock.clone()];
        {
            let mut store = Store::open(&dir).unwrap();
            store.initialize(&world, &gblock).unwrap();
            let mut parent = gblock.clone();
            for seq in 1..=4 {
                let b = child_block(&parent, &mut world, seq);
                store.put_block(&b).unwrap();
                let (root, nodes) = world.commit_tries();
                store.commit_root(root, &nodes).unwrap();
                store.commit(b.hash()).unwrap();
                blocks.push(b.clone());
                parent = b;
            }
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.head(), Some(blocks.last().unwrap().hash()));
        assert_eq!(store.canonical_chain().unwrap(), blocks);
        // Every committed root still resolves.
        for root in store.roots().to_vec() {
            assert_eq!(store.open_trie(root).unwrap().root_hash(), root);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_survives_reopen() {
        let dir = test_dir("store-prune");
        let mut world = genesis_world(8);
        let gblock = genesis_block(&world);
        let genesis_root = world.state_root();
        {
            let mut store = Store::open(&dir).unwrap();
            store.initialize(&world, &gblock).unwrap();
            let b1 = child_block(&gblock, &mut world, 1);
            store.put_block(&b1).unwrap();
            let (root, nodes) = world.commit_tries();
            store.commit_root(root, &nodes).unwrap();
            store.prune(genesis_root).unwrap();
            store.commit(b1.hash()).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert!(!store.contains_root(&genesis_root));
        assert!(store.contains_root(&world.state_root()));
        assert_eq!(
            store.open_trie(world.state_root()).unwrap().root_hash(),
            world.state_root()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_window_bounds_roots_and_snap_layers() {
        use bp_state::{BaseAccount, StateReader};
        use std::sync::Arc;
        let dir = test_dir("store-retention");
        let mut world = genesis_world(6);
        let gblock = genesis_block(&world);
        let config = StoreConfig {
            retention_window: Some(3),
            snapshots: true,
            group_commit: None,
        };
        let head;
        let head_root;
        {
            let mut store = Store::open_with(&dir, config.clone()).unwrap();
            store.initialize(&world, &gblock).unwrap();
            assert_eq!(store.snapshots().unwrap().base_root(), world.state_root());
            let mut parent = gblock.clone();
            let mut parent_root = world.state_root();
            for seq in 1..=8u64 {
                let b = child_block(&parent, &mut world, seq);
                let root = world.state_root();
                // The block's net effect: one fresh balance write.
                let mut delta = StateDelta::default();
                delta.accounts.insert(
                    Address::from_index(900 + seq),
                    Some(BaseAccount {
                        nonce: 0,
                        balance: U256::from(seq + 1),
                        code: Arc::new(Vec::new()),
                    }),
                );
                store.put_block(&b).unwrap();
                let (_, nodes) = world.commit_tries();
                store.commit_root(root, &nodes).unwrap();
                store.snap_add_layer(root, parent_root, seq, delta).unwrap();
                store.commit(b.hash()).unwrap();
                assert!(store.roots().len() <= 3);
                assert!(store.snapshots().unwrap().layer_count() <= 3);
                parent = b;
                parent_root = root;
            }
            head = parent.hash();
            head_root = parent_root;
            // The snap base advanced past genesis as layers flattened.
            assert!(store.snapshots().unwrap().base_height() >= 5);
        }
        let store = Store::open_with(&dir, config).unwrap();
        assert_eq!(store.head(), Some(head));
        assert_eq!(store.roots().len(), 3);
        assert!(store.contains_root(&head_root));
        let snaps = store.snapshots().unwrap();
        assert!(snaps.has_root(head_root));
        let reader = snaps.reader(head_root).unwrap();
        for seq in 1..=8u64 {
            assert_eq!(
                reader
                    .base_account(&Address::from_index(900 + seq))
                    .unwrap()
                    .balance,
                U256::from(seq + 1)
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Reopens `dir` with `config` and returns the durable head — what a
    /// crash right now would recover to.
    fn durable_head(dir: &Path, config: &StoreConfig) -> Option<BlockHash> {
        let scratch = test_dir("store-gc-probe");
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_file() {
                std::fs::copy(entry.path(), scratch.join(entry.file_name())).unwrap();
            }
        }
        let head = Store::open_with(&scratch, config.clone()).unwrap().head();
        std::fs::remove_dir_all(&scratch).unwrap();
        head
    }

    #[test]
    fn group_commit_coalesces_until_block_bound() {
        let dir = test_dir("store-gc-blocks");
        let config = StoreConfig {
            group_commit: Some(GroupCommitConfig {
                max_blocks: 3,
                max_bytes: u64::MAX,
            }),
            ..StoreConfig::default()
        };
        let mut world = genesis_world(5);
        let gblock = genesis_block(&world);
        let mut store = Store::open_with(&dir, config.clone()).unwrap();
        // initialize flushes: genesis is durable even under group commit.
        store.initialize(&world, &gblock).unwrap();
        assert_eq!(store.pending_commits(), 0);
        assert_eq!(durable_head(&dir, &config), Some(gblock.hash()));

        let mut parent = gblock.clone();
        let mut hashes = Vec::new();
        for seq in 1..=4u64 {
            let b = child_block(&parent, &mut world, seq);
            store.put_block(&b).unwrap();
            let (root, nodes) = world.commit_tries();
            store.commit_root(root, &nodes).unwrap();
            store.commit(b.hash()).unwrap();
            hashes.push(b.hash());
            parent = b;
        }
        // b1, b2 deferred; b3 closed the batch; b4 opened a new one.
        assert_eq!(store.pending_commits(), 1);
        assert_eq!(store.head(), Some(hashes[3]), "in-memory head runs ahead");
        assert_eq!(
            durable_head(&dir, &config),
            Some(hashes[2]),
            "durable head is the last batch boundary"
        );

        store.flush().unwrap();
        assert_eq!(store.pending_commits(), 0);
        assert_eq!(durable_head(&dir, &config), Some(hashes[3]));
        // Idempotent when nothing is pending.
        store.flush().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_byte_bound_closes_the_batch() {
        let dir = test_dir("store-gc-bytes");
        let config = StoreConfig {
            group_commit: Some(GroupCommitConfig {
                max_blocks: usize::MAX,
                max_bytes: 1, // any appended byte closes the batch
            }),
            ..StoreConfig::default()
        };
        let mut world = genesis_world(5);
        let gblock = genesis_block(&world);
        let mut store = Store::open_with(&dir, config.clone()).unwrap();
        store.initialize(&world, &gblock).unwrap();
        let b1 = child_block(&gblock, &mut world, 1);
        store.put_block(&b1).unwrap();
        let (root, nodes) = world.commit_tries();
        store.commit_root(root, &nodes).unwrap();
        store.commit(b1.hash()).unwrap();
        // The block's own bytes tripped the bound: nothing stays pending.
        assert_eq!(store.pending_commits(), 0);
        assert_eq!(durable_head(&dir, &config), Some(b1.hash()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_requires_known_head_block() {
        let dir = test_dir("store-badhead");
        let mut store = Store::open(&dir).unwrap();
        let err = store.commit(H256::from_low_u64(7)).unwrap_err();
        assert!(matches!(err, StoreError::MissingBlock(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
