//! Crash-injection tests: truncate the data logs at every byte boundary of
//! the last committed record and assert `Store::open` recovers to the
//! previous manifest head — never a torn block or dangling root.

use std::fs::OpenOptions;
use std::path::Path;

use bp_block::{genesis_header, Block, BlockProfile};
use bp_state::WorldState;
use bp_store::store::test_dir;
use bp_store::Store;
use bp_types::{Address, U256};

fn genesis_world() -> WorldState {
    let mut w = WorldState::new();
    for i in 1..=8u64 {
        w.set_balance(Address::from_index(i), U256::from(1_000_000u64));
    }
    w
}

fn genesis_block(state: &WorldState) -> Block {
    Block {
        header: genesis_header(state.state_root()),
        transactions: vec![],
        profile: BlockProfile::new(),
    }
}

fn child_block(parent: &Block, state: &mut WorldState, seq: u64) -> Block {
    state.set_balance(Address::from_index(900 + seq), U256::from(seq + 1));
    let mut header = genesis_header(state.state_root());
    header.parent_hash = parent.hash();
    header.height = parent.height() + 1;
    header.proposer_seed = seq;
    Block {
        header,
        transactions: vec![],
        profile: BlockProfile::new(),
    }
}

fn copy_store(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn truncate(path: &Path, len: u64) {
    OpenOptions::new()
        .write(true)
        .open(path)
        .unwrap()
        .set_len(len)
        .unwrap();
}

/// Kill the process at any byte boundary inside the last block record: the
/// newest manifest no longer fits the data file, so `Store::open` must fall
/// back one generation — to the previous head, never a torn block.
#[test]
fn truncating_last_block_record_recovers_previous_head() {
    let dir = test_dir("crash-blocks");
    let mut world = genesis_world();
    let gblock = genesis_block(&world);
    let mut store = Store::open(&dir).unwrap();
    store.initialize(&world, &gblock).unwrap();

    let b1 = child_block(&gblock, &mut world, 1);
    store.put_block(&b1).unwrap();
    let (root1, nodes1) = world.commit_tries();
    store.commit_root(root1, &nodes1).unwrap();
    store.commit(b1.hash()).unwrap();
    let blocks_len_at_b1 = std::fs::metadata(dir.join("blocks.log")).unwrap().len();

    let b2 = child_block(&b1, &mut world, 2);
    store.put_block(&b2).unwrap();
    let (root2, nodes2) = world.commit_tries();
    store.commit_root(root2, &nodes2).unwrap();
    store.commit(b2.hash()).unwrap();
    let blocks_len_at_b2 = std::fs::metadata(dir.join("blocks.log")).unwrap().len();
    drop(store);

    assert!(blocks_len_at_b2 > blocks_len_at_b1, "b2 appended a record");
    for cut in blocks_len_at_b1..blocks_len_at_b2 {
        let scratch = test_dir("crash-blocks-cut");
        copy_store(&dir, &scratch);
        truncate(&scratch.join("blocks.log"), cut);
        let recovered =
            Store::open(&scratch).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(recovered.head(), Some(b1.hash()), "cut at byte {cut}");
        assert!(!recovered.has_block(&b2.hash()), "torn b2 visible at {cut}");
        assert_eq!(
            recovered.get_block(&b1.hash()).unwrap().as_ref(),
            Some(&b1),
            "durable b1 damaged at {cut}"
        );
        assert!(recovered.contains_root(&root1));
        assert!(!recovered.contains_root(&root2));
        std::fs::remove_dir_all(&scratch).unwrap();
    }

    // The untruncated file keeps the newest generation.
    let full = Store::open(&dir).unwrap();
    assert_eq!(full.head(), Some(b2.hash()));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Same crash model applied to the node log: a torn trie-node tail rolls
/// the whole store back one commit.
#[test]
fn truncating_last_node_records_recovers_previous_head() {
    let dir = test_dir("crash-nodes");
    let mut world = genesis_world();
    let gblock = genesis_block(&world);
    let mut store = Store::open(&dir).unwrap();
    store.initialize(&world, &gblock).unwrap();

    let b1 = child_block(&gblock, &mut world, 1);
    store.put_block(&b1).unwrap();
    let (root1, nodes1) = world.commit_tries();
    store.commit_root(root1, &nodes1).unwrap();
    store.commit(b1.hash()).unwrap();
    let nodes_len_at_b1 = std::fs::metadata(dir.join("nodes.log")).unwrap().len();

    let b2 = child_block(&b1, &mut world, 2);
    store.put_block(&b2).unwrap();
    let (root2, nodes2) = world.commit_tries();
    store.commit_root(root2, &nodes2).unwrap();
    store.commit(b2.hash()).unwrap();
    let nodes_len_at_b2 = std::fs::metadata(dir.join("nodes.log")).unwrap().len();
    drop(store);

    assert!(
        nodes_len_at_b2 > nodes_len_at_b1,
        "b2 appended node records"
    );
    for cut in nodes_len_at_b1..nodes_len_at_b2 {
        let scratch = test_dir("crash-nodes-cut");
        copy_store(&dir, &scratch);
        truncate(&scratch.join("nodes.log"), cut);
        let recovered =
            Store::open(&scratch).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(recovered.head(), Some(b1.hash()), "cut at byte {cut}");
        assert!(recovered.contains_root(&root1));
        assert!(!recovered.contains_root(&root2));
        assert_eq!(recovered.open_trie(root1).unwrap().root_hash(), root1);
        std::fs::remove_dir_all(&scratch).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
