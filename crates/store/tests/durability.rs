//! Crash-injection tests: truncate the data logs at every byte boundary of
//! the last committed record and assert `Store::open` recovers to the
//! previous manifest head — never a torn block or dangling root.

use std::fs::OpenOptions;
use std::path::Path;

use bp_block::{genesis_header, Block, BlockProfile};
use bp_state::{StateDelta, WorldState};
use bp_store::store::test_dir;
use bp_store::{GroupCommitConfig, Store, StoreConfig};
use bp_types::{Address, U256};

fn genesis_world() -> WorldState {
    let mut w = WorldState::new();
    for i in 1..=8u64 {
        w.set_balance(Address::from_index(i), U256::from(1_000_000u64));
    }
    w
}

fn genesis_block(state: &WorldState) -> Block {
    Block {
        header: genesis_header(state.state_root()),
        transactions: vec![],
        profile: BlockProfile::new(),
    }
}

fn child_block(parent: &Block, state: &mut WorldState, seq: u64) -> Block {
    state.set_balance(Address::from_index(900 + seq), U256::from(seq + 1));
    let mut header = genesis_header(state.state_root());
    header.parent_hash = parent.hash();
    header.height = parent.height() + 1;
    header.proposer_seed = seq;
    Block {
        header,
        transactions: vec![],
        profile: BlockProfile::new(),
    }
}

fn copy_store(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            copy_store(&entry.path(), &dst.join(entry.file_name()));
        } else {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

fn truncate(path: &Path, len: u64) {
    OpenOptions::new()
        .write(true)
        .open(path)
        .unwrap()
        .set_len(len)
        .unwrap();
}

/// Kill the process at any byte boundary inside the last block record: the
/// newest manifest no longer fits the data file, so `Store::open` must fall
/// back one generation — to the previous head, never a torn block.
#[test]
fn truncating_last_block_record_recovers_previous_head() {
    let dir = test_dir("crash-blocks");
    let mut world = genesis_world();
    let gblock = genesis_block(&world);
    let mut store = Store::open(&dir).unwrap();
    store.initialize(&world, &gblock).unwrap();

    let b1 = child_block(&gblock, &mut world, 1);
    store.put_block(&b1).unwrap();
    let (root1, nodes1) = world.commit_tries();
    store.commit_root(root1, &nodes1).unwrap();
    store.commit(b1.hash()).unwrap();
    let blocks_len_at_b1 = std::fs::metadata(dir.join("blocks.log")).unwrap().len();

    let b2 = child_block(&b1, &mut world, 2);
    store.put_block(&b2).unwrap();
    let (root2, nodes2) = world.commit_tries();
    store.commit_root(root2, &nodes2).unwrap();
    store.commit(b2.hash()).unwrap();
    let blocks_len_at_b2 = std::fs::metadata(dir.join("blocks.log")).unwrap().len();
    drop(store);

    assert!(blocks_len_at_b2 > blocks_len_at_b1, "b2 appended a record");
    for cut in blocks_len_at_b1..blocks_len_at_b2 {
        let scratch = test_dir("crash-blocks-cut");
        copy_store(&dir, &scratch);
        truncate(&scratch.join("blocks.log"), cut);
        let recovered =
            Store::open(&scratch).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(recovered.head(), Some(b1.hash()), "cut at byte {cut}");
        assert!(!recovered.has_block(&b2.hash()), "torn b2 visible at {cut}");
        assert_eq!(
            recovered.get_block(&b1.hash()).unwrap().as_ref(),
            Some(&b1),
            "durable b1 damaged at {cut}"
        );
        assert!(recovered.contains_root(&root1));
        assert!(!recovered.contains_root(&root2));
        std::fs::remove_dir_all(&scratch).unwrap();
    }

    // The untruncated file keeps the newest generation.
    let full = Store::open(&dir).unwrap();
    assert_eq!(full.head(), Some(b2.hash()));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Same crash model applied to the node log: a torn trie-node tail rolls
/// the whole store back one commit.
#[test]
fn truncating_last_node_records_recovers_previous_head() {
    let dir = test_dir("crash-nodes");
    let mut world = genesis_world();
    let gblock = genesis_block(&world);
    let mut store = Store::open(&dir).unwrap();
    store.initialize(&world, &gblock).unwrap();

    let b1 = child_block(&gblock, &mut world, 1);
    store.put_block(&b1).unwrap();
    let (root1, nodes1) = world.commit_tries();
    store.commit_root(root1, &nodes1).unwrap();
    store.commit(b1.hash()).unwrap();
    let nodes_len_at_b1 = std::fs::metadata(dir.join("nodes.log")).unwrap().len();

    let b2 = child_block(&b1, &mut world, 2);
    store.put_block(&b2).unwrap();
    let (root2, nodes2) = world.commit_tries();
    store.commit_root(root2, &nodes2).unwrap();
    store.commit(b2.hash()).unwrap();
    let nodes_len_at_b2 = std::fs::metadata(dir.join("nodes.log")).unwrap().len();
    drop(store);

    assert!(
        nodes_len_at_b2 > nodes_len_at_b1,
        "b2 appended node records"
    );
    for cut in nodes_len_at_b1..nodes_len_at_b2 {
        let scratch = test_dir("crash-nodes-cut");
        copy_store(&dir, &scratch);
        truncate(&scratch.join("nodes.log"), cut);
        let recovered =
            Store::open(&scratch).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(recovered.head(), Some(b1.hash()), "cut at byte {cut}");
        assert!(recovered.contains_root(&root1));
        assert!(!recovered.contains_root(&root2));
        assert_eq!(recovered.open_trie(root1).unwrap().root_hash(), root1);
        std::fs::remove_dir_all(&scratch).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The group-commit crash contract, byte by byte. Two durable boundaries
/// bracket a coalesced batch (b3, b4 deferred, never flushed); a crash at
/// *any* byte of the unsynced tails of the block log, the node log, or the
/// snapshot layer journal must recover to the b2 boundary — with the trie
/// store and the snapshot tree agreeing on that head's root — and never
/// expose b3 or b4.
#[test]
fn crash_inside_coalesced_batch_rolls_back_to_boundary() {
    let dir = test_dir("crash-group-commit");
    let config = StoreConfig {
        retention_window: None,
        snapshots: true,
        group_commit: Some(GroupCommitConfig {
            max_blocks: 100, // only the explicit flush closes a batch
            max_bytes: u64::MAX,
        }),
    };
    let mut world = genesis_world();
    let gblock = genesis_block(&world);
    let mut store = Store::open_with(&dir, config.clone()).unwrap();
    store.initialize(&world, &gblock).unwrap();

    // One block = one balance write; its snap delta mirrors it.
    let advance = |store: &mut Store, parent: &Block, seq: u64, world: &mut WorldState| {
        let parent_root = world.state_root();
        let b = child_block(parent, world, seq);
        store.put_block(&b).unwrap();
        let (root, nodes) = world.commit_tries();
        store.commit_root(root, &nodes).unwrap();
        let mut delta = StateDelta::default();
        delta.accounts.insert(
            Address::from_index(900 + seq),
            Some(bp_state::BaseAccount {
                nonce: 0,
                balance: U256::from(seq + 1),
                code: std::sync::Arc::new(Vec::new()),
            }),
        );
        store.snap_add_layer(root, parent_root, seq, delta).unwrap();
        store.commit(b.hash()).unwrap();
        (b, root)
    };

    let (b1, _root1) = advance(&mut store, &gblock, 1, &mut world);
    let (b2, root2) = advance(&mut store, &b1, 2, &mut world);
    store.flush().unwrap(); // durable boundary: head b2
    let lens_at_boundary = file_lens(&dir);

    let (b3, root3) = advance(&mut store, &b2, 3, &mut world);
    let (b4, root4) = advance(&mut store, &b3, 4, &mut world);
    assert_eq!(store.pending_commits(), 2, "b3 and b4 stayed deferred");
    assert_eq!(store.head(), Some(b4.hash()), "in-memory head ran ahead");
    let lens_after_batch = file_lens(&dir);
    drop(store); // crash: the batch tail was never fsynced or manifested

    let journal = snap_journal_name(&dir);
    for file in ["blocks.log", "nodes.log", journal.as_str()] {
        let lo = lens_at_boundary[file];
        let hi = lens_after_batch[file];
        assert!(hi > lo, "{file}: batch appended nothing?");
        for cut in lo..hi {
            let scratch = test_dir("crash-gc-cut");
            copy_store(&dir, &scratch);
            truncate(&scratch.join(file), cut);
            let recovered = Store::open_with(&scratch, config.clone())
                .unwrap_or_else(|e| panic!("{file} cut {cut}: recovery failed: {e}"));
            assert_eq!(
                recovered.head(),
                Some(b2.hash()),
                "{file} cut {cut}: head is not the batch boundary"
            );
            assert!(!recovered.has_block(&b3.hash()), "{file} cut {cut}");
            assert!(!recovered.has_block(&b4.hash()), "{file} cut {cut}");
            assert!(recovered.contains_root(&root2), "{file} cut {cut}");
            assert!(!recovered.contains_root(&root3), "{file} cut {cut}");
            assert!(!recovered.contains_root(&root4), "{file} cut {cut}");
            assert_eq!(recovered.open_trie(root2).unwrap().root_hash(), root2);
            // Store and snapshot tree agree on the recovered head state.
            let snaps = recovered.snapshots().expect("snapshots enabled");
            assert!(snaps.has_root(root2), "{file} cut {cut}: snap lost head");
            std::fs::remove_dir_all(&scratch).unwrap();
        }
    }

    // Without any cut the full files still only recover to the boundary:
    // the batch tail was never published by a manifest.
    let recovered = Store::open_with(&dir, config).unwrap();
    assert_eq!(recovered.head(), Some(b2.hash()));
    assert!(!recovered.has_block(&b3.hash()));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Byte lengths of the three append streams, keyed by the names used in the
/// cut loop (the snap journal keyed by its `snap/<name>` relative path).
fn file_lens(dir: &Path) -> std::collections::HashMap<String, u64> {
    let mut lens = std::collections::HashMap::new();
    for name in ["blocks.log", "nodes.log"] {
        lens.insert(
            name.to_string(),
            std::fs::metadata(dir.join(name)).unwrap().len(),
        );
    }
    let journal = snap_journal_name(dir);
    lens.insert(
        journal.clone(),
        std::fs::metadata(dir.join(&journal)).unwrap().len(),
    );
    lens
}

/// Relative path of the current snapshot layer journal (`snap/layers.N.log`).
fn snap_journal_name(dir: &Path) -> String {
    let mut found = None;
    for entry in std::fs::read_dir(dir.join("snap")).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        if name.starts_with("layers.") && name.ends_with(".log") {
            assert!(
                found.is_none(),
                "multiple layer journals: {found:?}, {name}"
            );
            found = Some(name);
        }
    }
    format!("snap/{}", found.expect("layer journal exists"))
}
