//! Property test: any sequence of `put_block` / `commit_root` / `prune` /
//! `commit` / reopen operations round-trips — after a reopen the store
//! serves exactly the durable blocks (byte-identical) and resolves exactly
//! the durable root multiset.

use std::collections::HashSet;

use bp_block::{encode_block, genesis_header, Block, BlockProfile};
use bp_state::{Trie, WorldState};
use bp_store::store::test_dir;
use bp_store::{Store, StoreError};
use bp_types::{Address, BlockHash, H256, U256};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    PutBlock(usize),
    CommitRoot(usize),
    Prune(usize),
    Commit,
    Reopen,
}

const BLOCKS: usize = 6;
const TRIES: usize = 4;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..BLOCKS).prop_map(Op::PutBlock),
        (0..TRIES).prop_map(Op::CommitRoot),
        (0..TRIES).prop_map(Op::Prune),
        Just(Op::Commit),
        Just(Op::Reopen),
    ]
}

fn fixture_blocks() -> Vec<Block> {
    let mut world = WorldState::new();
    for i in 1..=8u64 {
        world.set_balance(Address::from_index(i), U256::from(1_000_000u64));
    }
    let mut blocks = vec![Block {
        header: genesis_header(world.state_root()),
        transactions: vec![],
        profile: BlockProfile::new(),
    }];
    for seq in 1..BLOCKS as u64 {
        let parent = blocks.last().unwrap();
        world.set_balance(Address::from_index(900 + seq), U256::from(seq + 1));
        let mut header = genesis_header(world.state_root());
        header.parent_hash = parent.hash();
        header.height = parent.height() + 1;
        header.proposer_seed = seq;
        blocks.push(Block {
            header,
            transactions: vec![],
            profile: BlockProfile::new(),
        });
    }
    blocks
}

fn fixture_tries() -> Vec<(H256, Vec<(H256, Vec<u8>)>)> {
    (0..TRIES as u8)
        .map(|i| {
            let mut t = Trie::new();
            for j in 0..(i as u64 + 2) * 4 {
                let key = format!("key-{i}-{j}");
                // Values are plain byte strings: they can never decode as an
                // account body, so the refcount walk stays in this trie.
                t.insert(key.as_bytes(), vec![0xAA, i, j as u8]);
            }
            t.commit_nodes()
        })
        .collect()
}

/// What must be durable (resp. visible) at any point.
#[derive(Clone, Default)]
struct Model {
    blocks: HashSet<BlockHash>,
    roots: Vec<H256>,
    head: Option<BlockHash>,
    last_put: Option<BlockHash>,
}

fn check_matches_durable(store: &Store, durable: &Model, all_blocks: &[Block]) {
    assert_eq!(store.head(), durable.head);
    for block in all_blocks {
        let hash = block.hash();
        assert_eq!(store.has_block(&hash), durable.blocks.contains(&hash));
        if durable.blocks.contains(&hash) {
            assert_eq!(
                store.get_block_raw(&hash).unwrap().as_deref(),
                Some(encode_block(block).as_slice()),
                "stored block must round-trip byte-identically"
            );
        }
    }
    let mut expect = durable.roots.clone();
    let mut got = store.roots().to_vec();
    expect.sort();
    got.sort();
    assert_eq!(got, expect, "retained root multiset");
    for root in got.iter().collect::<HashSet<_>>() {
        assert_eq!(store.open_trie(*root).unwrap().root_hash(), *root);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn op_sequences_round_trip_through_reopen(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let blocks = fixture_blocks();
        let tries = fixture_tries();
        let dir = test_dir("props");
        let mut store = Store::open(&dir).unwrap();
        let mut live = Model::default();
        let mut durable = Model::default();

        for op in &ops {
            match op {
                Op::PutBlock(i) => {
                    store.put_block(&blocks[*i]).unwrap();
                    live.blocks.insert(blocks[*i].hash());
                    live.last_put = Some(blocks[*i].hash());
                }
                Op::CommitRoot(j) => {
                    let (root, nodes) = &tries[*j];
                    store.commit_root(*root, nodes).unwrap();
                    live.roots.push(*root);
                }
                Op::Prune(j) => {
                    let root = tries[*j].0;
                    match live.roots.iter().position(|r| *r == root) {
                        Some(pos) => {
                            store.prune(root).unwrap();
                            live.roots.remove(pos);
                        }
                        None => {
                            let err = store.prune(root).unwrap_err();
                            prop_assert!(matches!(err, StoreError::UnknownRoot(_)));
                        }
                    }
                }
                Op::Commit => {
                    if let Some(head) = live.last_put {
                        store.commit(head).unwrap();
                        live.head = Some(head);
                        durable = live.clone();
                    }
                }
                Op::Reopen => {
                    drop(store);
                    store = Store::open(&dir).unwrap();
                    check_matches_durable(&store, &durable, &blocks);
                    live = durable.clone();
                }
            }
        }

        drop(store);
        let store = Store::open(&dir).unwrap();
        check_matches_durable(&store, &durable, &blocks);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
