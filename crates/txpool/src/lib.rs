//! The pending transaction pool.
//!
//! Proposers in BlockPilot pull transactions from this pool concurrently
//! (Algorithm 1's `PopHeap`) and push aborted ones back (`PushHeap`). The
//! pool therefore has to be both a priority queue and safe to share between
//! worker threads:
//!
//! * selection is by **gas price** (the strategy the paper says proposers
//!   typically use), with per-sender **nonce order** enforced: only the
//!   lowest-nonce pending transaction of each sender is eligible, because a
//!   later one can never commit before it;
//! * re-injected (aborted) transactions keep their identity and priority.

#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

use bp_evm::Transaction;
use bp_types::{Address, TxHash};
use parking_lot::Mutex;

/// Heap entry ordering: higher gas price first, then insertion sequence for
/// a stable total order.
#[derive(Clone, Debug)]
struct Entry {
    gas_price: u64,
    seq: u64,
    hash: TxHash,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gas_price
            .cmp(&other.gas_price)
            .then(other.seq.cmp(&self.seq)) // earlier arrival wins ties
    }
}

struct Inner {
    // Eligible transactions (lowest pending nonce per sender).
    ready: BinaryHeap<Entry>,
    // All transactions by hash.
    txs: HashMap<TxHash, Transaction>,
    // Per-sender queue of pending nonces → hash.
    by_sender: HashMap<Address, BTreeMap<u64, TxHash>>,
    // Hashes currently checked out by a worker.
    in_flight: HashSet<TxHash>,
    // Admission cap (None = unbounded). Bounds memory under sustained
    // ingest: when the pool is full, `try_add` refuses instead of growing.
    limit: Option<usize>,
    seq: u64,
}

impl Inner {
    /// Inserts a transaction, promoting it if it is the sender's new head.
    /// Duplicates are ignored. Does not check the admission cap.
    fn admit(&mut self, tx: Transaction) {
        let hash = tx.hash();
        if self.txs.contains_key(&hash) {
            return;
        }
        let sender = tx.sender;
        let nonce = tx.nonce;
        self.txs.insert(hash, tx);
        let is_head = {
            let queue = self.by_sender.entry(sender).or_default();
            queue.insert(nonce, hash);
            *queue.iter().next().expect("just inserted").1 == hash
        };
        if is_head {
            self.promote(&sender);
        }
    }

    /// Pushes the sender's lowest queued transaction into the ready heap if
    /// it is not already in flight. Stale heap entries are filtered on pop,
    /// so over-promotion is harmless.
    fn promote(&mut self, sender: &Address) {
        let Some(queue) = self.by_sender.get(sender) else {
            return;
        };
        let Some((_, &hash)) = queue.iter().next() else {
            return;
        };
        if self.in_flight.contains(&hash) {
            return;
        }
        let tx = &self.txs[&hash];
        self.seq += 1;
        self.ready.push(Entry {
            gas_price: tx.gas_price,
            seq: self.seq,
            hash,
        });
    }

    /// Pops the highest-priority eligible transaction, skipping stale heap
    /// entries, and marks it in-flight.
    fn pop_one(&mut self) -> Option<Transaction> {
        loop {
            let entry = self.ready.pop()?;
            // Skip stale entries (committed, or re-queued with a new entry).
            if self.in_flight.contains(&entry.hash) {
                continue;
            }
            let Some(tx) = self.txs.get(&entry.hash) else {
                continue;
            };
            // Stale entry for a sender whose head changed: only the current
            // head may execute.
            let head = self
                .by_sender
                .get(&tx.sender)
                .and_then(|q| q.iter().next().map(|(_, h)| *h));
            if head != Some(entry.hash) {
                continue;
            }
            self.in_flight.insert(entry.hash);
            return Some(self.txs[&entry.hash].clone());
        }
    }
}

/// A thread-safe pending pool with gas-price priority and per-sender nonce
/// ordering.
pub struct TxPool {
    inner: Mutex<Inner>,
}

impl Default for TxPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TxPool {
    /// An empty, unbounded pool.
    pub fn new() -> Self {
        Self::with_limit(None)
    }

    /// An empty pool that admits at most `limit` transactions at a time.
    /// Ingest through [`TxPool::try_add`] / [`TxPool::add_batch`] is refused
    /// while the pool is full, which is the backpressure signal a sustained
    /// feed needs to stop outrunning the proposer.
    pub fn with_capacity_limit(limit: usize) -> Self {
        Self::with_limit(Some(limit))
    }

    fn with_limit(limit: Option<usize>) -> Self {
        TxPool {
            inner: Mutex::new(Inner {
                ready: BinaryHeap::new(),
                txs: HashMap::new(),
                by_sender: HashMap::new(),
                in_flight: HashSet::new(),
                limit,
                seq: 0,
            }),
        }
    }

    /// Adds a transaction unconditionally (the admission cap is not
    /// consulted). Duplicate hashes are ignored.
    pub fn add(&self, tx: Transaction) {
        self.inner.lock().admit(tx);
    }

    /// Adds a transaction unless the pool is at its admission cap. Returns
    /// `false` iff the transaction was refused for capacity (duplicates
    /// count as accepted — they are already present).
    pub fn try_add(&self, tx: Transaction) -> bool {
        let mut g = self.inner.lock();
        if let Some(limit) = g.limit {
            if g.txs.len() >= limit && !g.txs.contains_key(&tx.hash()) {
                return false;
            }
        }
        g.admit(tx);
        true
    }

    /// Adds a batch of transactions under a single lock acquisition,
    /// stopping at the admission cap. Returns how many were taken; the
    /// caller re-offers the remainder after draining. One acquisition per
    /// batch keeps sustained ingest from serializing against proposer
    /// workers' `pop_many`/`commit` traffic.
    pub fn add_batch(&self, txs: &mut Vec<Transaction>) -> usize {
        let mut g = self.inner.lock();
        let room = match g.limit {
            Some(limit) => limit.saturating_sub(g.txs.len()),
            None => txs.len(),
        };
        let take = room.min(txs.len());
        for tx in txs.drain(..take) {
            g.admit(tx);
        }
        take
    }

    /// Pops the highest-priority eligible transaction (Algorithm 1
    /// `PopHeap`). The transaction is marked in-flight: the sender's next
    /// transaction does not become eligible until this one commits or
    /// returns.
    pub fn pop(&self) -> Option<Transaction> {
        self.inner.lock().pop_one()
    }

    /// Pops up to `max` eligible transactions under a single lock
    /// acquisition. Proposer workers use this to amortize the pool mutex:
    /// one acquisition checks out a small batch instead of `max` separate
    /// lock round-trips. All returned transactions are in-flight, ordered by
    /// descending priority, and from distinct senders (per-sender nonce
    /// gating keeps at most one transaction per sender eligible).
    pub fn pop_many(&self, max: usize) -> Vec<Transaction> {
        let mut g = self.inner.lock();
        let mut out = Vec::with_capacity(max);
        while out.len() < max {
            match g.pop_one() {
                Some(tx) => out.push(tx),
                None => break,
            }
        }
        out
    }

    /// Returns an aborted transaction to the pool (Algorithm 1 `PushHeap`):
    /// it becomes eligible again with its original priority.
    pub fn push_back(&self, tx: &Transaction) {
        let mut g = self.inner.lock();
        let hash = tx.hash();
        debug_assert!(g.txs.contains_key(&hash), "push_back of unknown tx");
        g.in_flight.remove(&hash);
        g.promote(&tx.sender);
    }

    /// Marks a transaction as committed into a block: it leaves the pool and
    /// the sender's next transaction becomes eligible.
    pub fn commit(&self, tx: &Transaction) {
        let mut g = self.inner.lock();
        let hash = tx.hash();
        g.in_flight.remove(&hash);
        g.txs.remove(&hash);
        let sender = tx.sender;
        let now_empty = if let Some(queue) = g.by_sender.get_mut(&sender) {
            queue.remove(&tx.nonce);
            queue.is_empty()
        } else {
            false
        };
        if now_empty {
            g.by_sender.remove(&sender);
        } else {
            g.promote(&sender);
        }
    }

    /// Drops a transaction permanently (invalid nonce/funds).
    ///
    /// Unlike [`TxPool::commit`], the sender's queued higher-nonce
    /// transactions go with it: with this nonce never committing, every
    /// later nonce has an unfillable gap and could otherwise sit in the
    /// pool forever — worse, promoting the next nonce as `commit` does
    /// would offer proposers a transaction that can only abort.
    pub fn discard(&self, tx: &Transaction) {
        let mut g = self.inner.lock();
        let hash = tx.hash();
        g.in_flight.remove(&hash);
        g.txs.remove(&hash);
        if let Some(queue) = g.by_sender.remove(&tx.sender) {
            let doomed: Vec<TxHash> = queue.range(tx.nonce..).map(|(_, h)| *h).collect();
            for h in doomed {
                g.txs.remove(&h);
                g.in_flight.remove(&h);
            }
            let mut keep: BTreeMap<u64, TxHash> = queue;
            keep.retain(|&nonce, _| nonce < tx.nonce);
            if !keep.is_empty() {
                g.by_sender.insert(tx.sender, keep);
            }
        }
        // Stale heap entries for the removed hashes are filtered on pop.
    }

    /// Number of transactions currently in the pool (including in-flight).
    pub fn len(&self) -> usize {
        self.inner.lock().txs.len()
    }

    /// True iff the pool holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().txs.is_empty()
    }

    /// Number of transactions checked out by workers.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_types::U256;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn tx(sender: u64, nonce: u64, gas_price: u64) -> Transaction {
        Transaction {
            sender: addr(sender),
            to: Some(addr(999)),
            value: U256::ONE,
            nonce,
            gas_limit: 21_000,
            gas_price,
            data: Vec::new(),
        }
    }

    #[test]
    fn pops_by_gas_price() {
        let pool = TxPool::new();
        pool.add(tx(1, 0, 10));
        pool.add(tx(2, 0, 30));
        pool.add(tx(3, 0, 20));
        assert_eq!(pool.pop().unwrap().gas_price, 30);
        assert_eq!(pool.pop().unwrap().gas_price, 20);
        assert_eq!(pool.pop().unwrap().gas_price, 10);
        assert!(pool.pop().is_none());
    }

    #[test]
    fn nonce_order_within_sender() {
        let pool = TxPool::new();
        // Higher gas price on the later nonce must not jump the queue.
        pool.add(tx(1, 1, 100));
        pool.add(tx(1, 0, 1));
        let first = pool.pop().unwrap();
        assert_eq!(first.nonce, 0);
        // Second tx not eligible until the first commits.
        assert!(pool.pop().is_none());
        pool.commit(&first);
        assert_eq!(pool.pop().unwrap().nonce, 1);
    }

    #[test]
    fn aborted_tx_returns_with_priority() {
        let pool = TxPool::new();
        pool.add(tx(1, 0, 50));
        pool.add(tx(2, 0, 40));
        let popped = pool.pop().unwrap();
        assert_eq!(popped.gas_price, 50);
        pool.push_back(&popped);
        // It is eligible again and still beats the other.
        assert_eq!(pool.pop().unwrap().gas_price, 50);
    }

    #[test]
    fn commit_removes_and_unblocks() {
        let pool = TxPool::new();
        pool.add(tx(1, 0, 5));
        pool.add(tx(1, 1, 5));
        assert_eq!(pool.len(), 2);
        let t0 = pool.pop().unwrap();
        pool.commit(&t0);
        assert_eq!(pool.len(), 1);
        let t1 = pool.pop().unwrap();
        assert_eq!(t1.nonce, 1);
        pool.commit(&t1);
        assert!(pool.is_empty());
    }

    #[test]
    fn duplicate_adds_ignored() {
        let pool = TxPool::new();
        let t = tx(1, 0, 5);
        pool.add(t.clone());
        pool.add(t);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn in_flight_counted() {
        let pool = TxPool::new();
        pool.add(tx(1, 0, 5));
        assert_eq!(pool.in_flight(), 0);
        let t = pool.pop().unwrap();
        assert_eq!(pool.in_flight(), 1);
        pool.push_back(&t);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn concurrent_pops_are_disjoint() {
        use std::sync::Arc;
        let pool = Arc::new(TxPool::new());
        for s in 0..100u64 {
            pool.add(tx(s, 0, s));
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(t) = pool.pop() {
                    got.push(t.hash());
                }
                got
            }));
        }
        let mut all: Vec<TxHash> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no tx may be popped twice");
        assert_eq!(total, 100);
    }

    #[test]
    fn discard_drops_dependent_higher_nonces() {
        let pool = TxPool::new();
        pool.add(tx(1, 0, 10));
        pool.add(tx(1, 1, 10));
        pool.add(tx(1, 2, 10));
        pool.add(tx(2, 0, 5));
        let t0 = pool.pop().unwrap();
        assert_eq!((t0.sender, t0.nonce), (addr(1), 0));
        // Nonce 0 is permanently invalid: nonces 1 and 2 can never execute
        // either and must leave the pool with it, not be promoted.
        pool.discard(&t0);
        assert_eq!(pool.len(), 1, "only the other sender's tx survives");
        let rest = pool.pop().unwrap();
        assert_eq!(rest.sender, addr(2));
        assert!(pool.pop().is_none());
        pool.commit(&rest);
        assert!(pool.is_empty());
    }

    #[test]
    fn discard_keeps_lower_nonces_intact() {
        let pool = TxPool::new();
        pool.add(tx(1, 0, 10));
        pool.add(tx(1, 1, 10));
        pool.add(tx(1, 2, 10));
        // Discard the middle nonce without ever popping it: the gap dooms
        // nonce 2, but nonce 0 is still perfectly executable.
        pool.discard(&tx(1, 1, 10));
        assert_eq!(pool.len(), 1);
        let t = pool.pop().unwrap();
        assert_eq!(t.nonce, 0);
        pool.commit(&t);
        assert!(pool.pop().is_none(), "doomed nonce 2 must not resurface");
        assert!(pool.is_empty());
    }

    #[test]
    fn pop_many_respects_priority_and_nonce_gating() {
        let pool = TxPool::new();
        pool.add(tx(1, 0, 10));
        pool.add(tx(1, 1, 99)); // gated behind nonce 0
        pool.add(tx(2, 0, 30));
        pool.add(tx(3, 0, 20));
        let batch = pool.pop_many(10);
        let prices: Vec<u64> = batch.iter().map(|t| t.gas_price).collect();
        // One tx per sender, descending priority; sender 1's nonce 1 stays
        // gated until nonce 0 commits.
        assert_eq!(prices, vec![30, 20, 10]);
        assert_eq!(pool.in_flight(), 3);
        for t in &batch {
            pool.commit(t);
        }
        assert_eq!(pool.pop_many(10).len(), 1); // sender 1, nonce 1
    }

    #[test]
    fn pop_many_caps_at_max() {
        let pool = TxPool::new();
        for s in 0..10u64 {
            pool.add(tx(s, 0, 1));
        }
        assert_eq!(pool.pop_many(4).len(), 4);
        assert_eq!(pool.pop_many(0).len(), 0);
        assert_eq!(pool.pop_many(100).len(), 6);
        assert_eq!(pool.in_flight(), 10);
    }

    #[test]
    fn capacity_limit_refuses_then_admits_after_drain() {
        let pool = TxPool::with_capacity_limit(2);
        assert!(pool.try_add(tx(1, 0, 10)));
        assert!(pool.try_add(tx(2, 0, 10)));
        assert!(!pool.try_add(tx(3, 0, 10)), "full pool must refuse");
        // A duplicate of a resident tx is not a capacity violation.
        assert!(pool.try_add(tx(1, 0, 10)));
        let t = pool.pop().unwrap();
        // In-flight still occupies a slot; only commit/discard frees it.
        assert!(!pool.try_add(tx(3, 0, 10)));
        pool.commit(&t);
        assert!(pool.try_add(tx(3, 0, 10)));
    }

    #[test]
    fn add_batch_takes_up_to_room_and_leaves_rest() {
        let pool = TxPool::with_capacity_limit(3);
        let mut batch: Vec<Transaction> = (0..5u64).map(|s| tx(s, 0, 1)).collect();
        assert_eq!(pool.add_batch(&mut batch), 3);
        assert_eq!(batch.len(), 2, "refused txs stay with the caller");
        assert_eq!(pool.len(), 3);
        // Drain and re-offer: the remainder goes in.
        for t in pool.pop_many(3) {
            pool.commit(&t);
        }
        assert_eq!(pool.add_batch(&mut batch), 2);
        assert!(batch.is_empty());
    }

    /// Sustained ingest while proposer workers drain: feeders push nonce
    /// sequences through the capacity-bounded path, drainers pop/commit
    /// concurrently. Every admitted transaction must eventually commit
    /// exactly once, in nonce order per sender, with no starved feeder and
    /// no livelock.
    #[test]
    fn concurrent_ingest_vs_drain_commits_everything_once() {
        use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
        use std::sync::Arc;

        const SENDERS: u64 = 8;
        const PER_SENDER: u64 = 50;
        let pool = Arc::new(TxPool::with_capacity_limit(32));
        let done_feeding = Arc::new(AtomicBool::new(false));

        let feeders: Vec<_> = (0..SENDERS)
            .map(|s| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for n in 0..PER_SENDER {
                        // Busy-retry on a full pool: admission must make
                        // progress as drainers free slots.
                        while !pool.try_add(tx(s, n, 1 + (s + n) % 7)) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        let drainers: Vec<_> = (0..3)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done_feeding);
                std::thread::spawn(move || {
                    let mut committed: Vec<(Address, u64)> = Vec::new();
                    loop {
                        let batch = pool.pop_many(4);
                        if batch.is_empty() {
                            if done.load(AtomicOrdering::Acquire) && pool.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        }
                        for t in batch {
                            committed.push((t.sender, t.nonce));
                            pool.commit(&t);
                        }
                    }
                    committed
                })
            })
            .collect();

        for f in feeders {
            f.join().unwrap();
        }
        done_feeding.store(true, AtomicOrdering::Release);
        let mut all: Vec<(Address, u64)> = drainers
            .into_iter()
            .flat_map(|d| d.join().unwrap())
            .collect();
        let total = all.len();
        assert_eq!(total as u64, SENDERS * PER_SENDER, "every tx commits");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no tx commits twice");
        assert!(pool.is_empty());
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn later_arrival_of_lower_nonce_takes_precedence() {
        let pool = TxPool::new();
        pool.add(tx(1, 2, 10));
        pool.add(tx(1, 1, 10));
        pool.add(tx(1, 0, 10));
        let t = pool.pop().unwrap();
        assert_eq!(t.nonce, 0);
    }
}
