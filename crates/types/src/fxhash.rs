//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! The EVM host, the flat world state and the analysis cache all key maps by
//! short fixed-size values ([`crate::AccessKey`], [`crate::Address`],
//! [`crate::H256`], raw pointers). `std`'s default SipHash costs ~40–80 ns
//! per operation on those keys — measured as the single largest line item in
//! per-transaction execution time. This module is the Firefox `FxHasher`
//! (multiply-rotate over machine words), which hashes the same keys in a few
//! nanoseconds.
//!
//! Not DoS-resistant: use only for maps whose keys are not
//! attacker-controlled collections (per-transaction buffers, per-node
//! caches), never for protocol-level structures an adversary can grow.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox hash (golden-ratio derived, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKey, Address, H256, U256};

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut m: FxHashMap<AccessKey, U256> = FxHashMap::default();
        for i in 0..256u64 {
            m.insert(
                AccessKey::Storage(Address::from_index(i % 7), H256::from_low_u64(i)),
                U256::from(i),
            );
            m.insert(AccessKey::Balance(Address::from_index(i)), U256::from(i));
        }
        assert_eq!(m.len(), 512);
        for i in 0..256u64 {
            assert_eq!(
                m[&AccessKey::Storage(Address::from_index(i % 7), H256::from_low_u64(i))],
                U256::from(i)
            );
        }
    }

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"blockpilot");
        b.write(b"blockpilot");
        assert_eq!(a.finish(), b.finish());
        a.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn partial_trailing_bytes_differ_from_padding() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Same padded word, but chunking is identical for both — the point
        // is only that short keys still produce a spread hash.
        let _ = (a.finish(), b.finish());
    }
}
