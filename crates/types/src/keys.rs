//! Access keys: the unit of conflict detection.
//!
//! Both sides of the BlockPilot framework reason about transactions through
//! the set of state locations they read and write:
//!
//! * the OCC-WSI proposer keeps a *reserve table* mapping each [`AccessKey`]
//!   to the version of the last transaction that wrote it, and aborts a
//!   transaction whose read set observed an older version;
//! * the validator scheduler builds the dependency graph by intersecting the
//!   read/write sets of transactions at **account granularity** (the paper's
//!   §4.3: balances change in every transaction and contract-storage writes
//!   update the account's storage root).
//!
//! [`AccessKey::account`] maps a fine-grained key to its coarse account-level
//! key, so both granularities are available to the scheduler.

use serde::{Deserialize, Serialize};

use crate::{Address, FxHashMap, H256, U256};

/// One addressable state location.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum AccessKey {
    /// An account's balance counter.
    Balance(Address),
    /// An account's nonce counter.
    Nonce(Address),
    /// One storage slot of a contract account.
    Storage(Address, H256),
    /// An account's code.
    Code(Address),
}

impl AccessKey {
    /// The account this key belongs to.
    pub fn address(&self) -> Address {
        match *self {
            AccessKey::Balance(a)
            | AccessKey::Nonce(a)
            | AccessKey::Storage(a, _)
            | AccessKey::Code(a) => a,
        }
    }

    /// Coarsens the key to account granularity (used by the validator's
    /// dependency graph, which treats any two touches of the same account as
    /// conflicting).
    pub fn account(&self) -> AccessKey {
        AccessKey::Balance(self.address())
    }

    /// True for storage-slot keys (the paper's "storage conflicts").
    pub fn is_storage(&self) -> bool {
        matches!(self, AccessKey::Storage(..))
    }

    /// True for balance/nonce keys (the paper's "counter conflicts").
    pub fn is_counter(&self) -> bool {
        matches!(self, AccessKey::Balance(_) | AccessKey::Nonce(_))
    }
}

/// A read set: key → the state **version** the value was read at.
///
/// Versions are the OCC-WSI snapshot versions from Algorithm 1: version 0 is
/// the pre-block state, and each committed transaction bumps the version of
/// every key it writes.
///
/// Backed by an [`FxHashMap`]: footprints are recorded on the per-opcode hot
/// path (every `SLOAD` inserts here), and their size is bounded by the gas
/// limit, so the fast non-DoS-resistant hash applies. Anything that needs a
/// deterministic order over a footprint (wire encoding, display) must sort
/// explicitly.
pub type ReadSet = FxHashMap<AccessKey, u64>;

/// A write set: key → the value written. See [`ReadSet`] for why this is
/// hash- rather than tree-backed.
pub type WriteSet = FxHashMap<AccessKey, U256>;

/// The read/write footprint of one executed transaction.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RwSet {
    /// Keys read, with the version observed for each.
    pub reads: ReadSet,
    /// Keys written, with the final value for each.
    pub writes: WriteSet,
}

impl RwSet {
    /// An empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `key` at `version` (first read wins: the footprint
    /// keeps the version of the *initial* observation, matching snapshot
    /// reads).
    pub fn record_read(&mut self, key: AccessKey, version: u64) {
        self.reads.entry(key).or_insert(version);
    }

    /// Records a write of `value` to `key` (last write wins).
    pub fn record_write(&mut self, key: AccessKey, value: U256) {
        self.writes.insert(key, value);
    }

    /// True if `self`'s writes intersect `other`'s reads or writes, or vice
    /// versa — i.e. the two transactions conflict (RAW, WAR or WAW) and must
    /// not run concurrently on a validator.
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        let w_vs_rw = self
            .writes
            .keys()
            .any(|k| other.reads.contains_key(k) || other.writes.contains_key(k));
        if w_vs_rw {
            return true;
        }
        other.writes.keys().any(|k| self.reads.contains_key(k))
    }

    /// Like [`RwSet::conflicts_with`] but at account granularity, the
    /// coarsening used by the validator scheduler.
    pub fn conflicts_with_account_level(&self, other: &RwSet) -> bool {
        let mine: std::collections::BTreeSet<Address> =
            self.writes.keys().map(AccessKey::address).collect();
        let theirs_touch = |k: &AccessKey| mine.contains(&k.address());
        if other.reads.keys().any(theirs_touch) || other.writes.keys().any(theirs_touch) {
            return true;
        }
        let their_writes: std::collections::BTreeSet<Address> =
            other.writes.keys().map(AccessKey::address).collect();
        self.reads
            .keys()
            .any(|k| their_writes.contains(&k.address()))
    }

    /// All accounts this footprint touches.
    pub fn touched_accounts(&self) -> std::collections::BTreeSet<Address> {
        self.reads
            .keys()
            .chain(self.writes.keys())
            .map(AccessKey::address)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn account_coarsening() {
        let k = AccessKey::Storage(addr(1), H256::from_low_u64(7));
        assert_eq!(k.account(), AccessKey::Balance(addr(1)));
        assert_eq!(k.address(), addr(1));
        assert!(k.is_storage());
        assert!(!k.is_counter());
        assert!(AccessKey::Nonce(addr(1)).is_counter());
    }

    #[test]
    fn first_read_version_wins() {
        let mut rw = RwSet::new();
        let k = AccessKey::Balance(addr(1));
        rw.record_read(k, 3);
        rw.record_read(k, 9);
        assert_eq!(rw.reads[&k], 3);
    }

    #[test]
    fn last_write_wins() {
        let mut rw = RwSet::new();
        let k = AccessKey::Balance(addr(1));
        rw.record_write(k, U256::from(1u64));
        rw.record_write(k, U256::from(2u64));
        assert_eq!(rw.writes[&k], U256::from(2u64));
    }

    #[test]
    fn raw_conflict_detected() {
        let mut a = RwSet::new();
        a.record_write(AccessKey::Balance(addr(1)), U256::ONE);
        let mut b = RwSet::new();
        b.record_read(AccessKey::Balance(addr(1)), 0);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a)); // WAR seen from the other side
    }

    #[test]
    fn waw_conflict_detected() {
        let mut a = RwSet::new();
        a.record_write(AccessKey::Balance(addr(1)), U256::ONE);
        let mut b = RwSet::new();
        b.record_write(AccessKey::Balance(addr(1)), U256::from(2u64));
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn read_read_is_not_a_conflict() {
        let mut a = RwSet::new();
        a.record_read(AccessKey::Balance(addr(1)), 0);
        let mut b = RwSet::new();
        b.record_read(AccessKey::Balance(addr(1)), 0);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn disjoint_sets_do_not_conflict() {
        let mut a = RwSet::new();
        a.record_write(AccessKey::Balance(addr(1)), U256::ONE);
        let mut b = RwSet::new();
        b.record_write(AccessKey::Balance(addr(2)), U256::ONE);
        b.record_read(AccessKey::Storage(addr(3), H256::ZERO), 0);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn account_level_is_coarser() {
        // Different storage slots of the same contract: no slot-level
        // conflict, but an account-level one.
        let c = addr(9);
        let mut a = RwSet::new();
        a.record_write(AccessKey::Storage(c, H256::from_low_u64(1)), U256::ONE);
        let mut b = RwSet::new();
        b.record_write(AccessKey::Storage(c, H256::from_low_u64(2)), U256::ONE);
        assert!(!a.conflicts_with(&b));
        assert!(a.conflicts_with_account_level(&b));
    }

    #[test]
    fn touched_accounts_union() {
        let mut a = RwSet::new();
        a.record_read(AccessKey::Balance(addr(1)), 0);
        a.record_write(AccessKey::Storage(addr(2), H256::ZERO), U256::ONE);
        let touched = a.touched_accounts();
        assert_eq!(touched.len(), 2);
        assert!(touched.contains(&addr(1)) && touched.contains(&addr(2)));
    }
}
