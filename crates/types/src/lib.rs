//! Fundamental value types shared by every BlockPilot subsystem.
//!
//! This crate deliberately has no dependencies beyond `serde`: everything that
//! touches consensus-critical data (256-bit words, hashes, addresses, access
//! keys) lives here so that the substrate crates (`bp-crypto`, `bp-state`,
//! `bp-evm`) and the framework crate (`blockpilot-core`) agree on a single
//! representation.
//!
//! # Layout
//!
//! * [`U256`] — a 256-bit unsigned integer implemented over four little-endian
//!   `u64` limbs, with the full arithmetic surface the EVM needs (wrapping
//!   add/sub/mul, checked division, modular arithmetic, exponentiation, bit
//!   operations and shifts).
//! * [`H256`] / [`Address`] — fixed-size byte arrays used for hashes, storage
//!   slots and account identities.
//! * [`AccessKey`] — the unit of conflict detection used by the OCC-WSI
//!   proposer and the validator scheduler: a balance, nonce, storage slot or
//!   code entry of some account.
//! * [`Gas`] and related newtypes.

#![warn(missing_docs)]

pub mod fxhash;
pub mod keys;
pub mod primitives;
pub mod u256;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use keys::{AccessKey, ReadSet, RwSet, WriteSet};
pub use primitives::{Address, BlockHash, Gas, Height, Nonce, TxHash, H256};
pub use u256::U256;
