//! Fixed-size hashes, addresses and consensus-level newtypes.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::U256;

/// A 256-bit hash (Keccak-256 output, MPT node reference, storage slot key).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// Builds a slot key from a small integer (big-endian), a convenience for
    /// contract storage layouts.
    pub fn from_low_u64(v: u64) -> Self {
        let mut out = [0u8; 32];
        out[24..].copy_from_slice(&v.to_be_bytes());
        H256(out)
    }

    /// Interprets the hash as a big-endian 256-bit integer.
    pub fn to_u256(&self) -> U256 {
        U256::from_be_bytes(self.0)
    }

    /// Builds a hash from the big-endian encoding of `v`.
    pub fn from_u256(v: U256) -> Self {
        H256(v.to_be_bytes())
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for H256 {
    fn from(b: [u8; 32]) -> Self {
        H256(b)
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A 160-bit account address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (used as the contract-creation sentinel in
    /// transactions with no recipient).
    pub const ZERO: Address = Address([0u8; 20]);

    /// Deterministic test/workload address derived from an index.
    pub fn from_index(i: u64) -> Self {
        let mut out = [0u8; 20];
        out[12..].copy_from_slice(&i.to_be_bytes());
        out[0] = 0xEE; // visually distinguish synthetic addresses
        Address(out)
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// True iff this is [`Address::ZERO`].
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 20]
    }
}

impl From<[u8; 20]> for Address {
    fn from(b: [u8; 20]) -> Self {
        Address(b)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Gas amount. Plain `u64` alias: gas never exceeds block limits in practice
/// and arithmetic on it is pervasive and hot.
pub type Gas = u64;

/// Account nonce.
pub type Nonce = u64;

/// Block height.
pub type Height = u64;

/// Transaction hash.
pub type TxHash = H256;

/// Block hash.
pub type BlockHash = H256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h256_u256_roundtrip() {
        let v = U256([7, 11, 13, 17]);
        assert_eq!(H256::from_u256(v).to_u256(), v);
    }

    #[test]
    fn h256_from_low_u64_is_big_endian() {
        let h = H256::from_low_u64(0x01020304);
        assert_eq!(h.0[31], 0x04);
        assert_eq!(h.0[28], 0x01);
        assert_eq!(h.0[0], 0);
    }

    #[test]
    fn address_from_index_distinct() {
        assert_ne!(Address::from_index(1), Address::from_index(2));
        assert!(!Address::from_index(0).is_zero());
        assert!(Address::ZERO.is_zero());
    }

    #[test]
    fn display_hex() {
        let h = H256::from_low_u64(0xff);
        assert!(h.to_string().starts_with("0x0000"));
        assert!(h.to_string().ends_with("ff"));
        let a = Address::from_index(3);
        assert_eq!(a.to_string().len(), 42);
    }
}
