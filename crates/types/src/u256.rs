//! A 256-bit unsigned integer.
//!
//! The EVM is a 256-bit word machine, and Ethereum balances and storage values
//! are 256-bit words. [`U256`] stores four little-endian `u64` limbs and
//! provides the arithmetic the interpreter in `bp-evm` needs. Arithmetic
//! follows EVM semantics: addition, subtraction and multiplication wrap
//! modulo 2^256; division and remainder by zero yield zero (the EVM's `DIV`
//! and `MOD` rules) through [`U256::div_mod`].

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{
    Add, AddAssign, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub, SubAssign,
};

use serde::{Deserialize, Serialize};

/// 256-bit unsigned integer: four 64-bit limbs, least significant first.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Builds a value from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Builds a value from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Returns the low 64 bits, discarding the rest.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Returns the low 128 bits, discarding the rest.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Converts to `u64` if the value fits.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `usize` if the value fits.
    #[inline]
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Number of significant bits (`0` for zero; `256` for `MAX`).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Value of bit `i` (little-endian bit order); bits past 255 read as 0.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the byte at `index`, big-endian (index 0 = most significant).
    ///
    /// This matches the EVM `BYTE` opcode; indices ≥ 32 yield 0.
    #[inline]
    pub fn byte_be(&self, index: usize) -> u8 {
        if index >= 32 {
            return 0;
        }
        self.to_be_bytes()[index]
    }

    /// Wrapping addition; also returns the carry flag.
    #[inline]
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *limb = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction; also returns the borrow flag.
    #[inline]
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *limb = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Checked addition: `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction: `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Saturating subtraction: clamps at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Wrapping multiplication modulo 2^256; also returns whether the true
    /// product overflowed.
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let idx = i + j;
                let cur = out[idx] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
            }
            // Propagate the final carry into the upper half.
            let mut idx = i + 4;
            while carry != 0 && idx < 8 {
                let cur = out[idx] as u128 + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let overflow = out[4..].iter().any(|&w| w != 0);
        (U256([out[0], out[1], out[2], out[3]]), overflow)
    }

    /// Checked multiplication: `None` on overflow.
    #[inline]
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        match self.overflowing_mul(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Simultaneous quotient and remainder.
    ///
    /// Division by zero returns `(0, 0)`, matching EVM `DIV`/`MOD` semantics.
    pub fn div_mod(self, rhs: U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < rhs {
            return (U256::ZERO, self);
        }
        if rhs.bits() <= 64 {
            return self.div_mod_u64(rhs.0[0]);
        }
        // Schoolbook binary long division on the remaining (rare) path.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder << 1;
            if self.bit(i as usize) {
                remainder.0[0] |= 1;
            }
            if remainder >= rhs {
                remainder = remainder.overflowing_sub(rhs).0;
                quotient.0[(i / 64) as usize] |= 1 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    /// Fast path for division by a 64-bit divisor.
    fn div_mod_u64(self, d: u64) -> (U256, U256) {
        debug_assert!(d != 0);
        let mut rem: u128 = 0;
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            let cur = (rem << 64) | self.0[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (U256(out), U256::from_u64(rem as u64))
    }

    /// `(self + rhs) % modulus` without intermediate overflow. Zero modulus
    /// yields zero (EVM `ADDMOD`).
    pub fn add_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let (sum, carry) = self.overflowing_add(rhs);
        if !carry {
            return sum.div_mod(modulus).1;
        }
        // sum + 2^256 mod m == (sum mod m + 2^256 mod m) mod m.
        let wrap = (U256::MAX.div_mod(modulus).1 + U256::ONE)
            .div_mod(modulus)
            .1;
        sum.div_mod(modulus).1.add_mod(wrap, modulus)
    }

    /// `(self * rhs) % modulus` via 512-bit intermediate. Zero modulus yields
    /// zero (EVM `MULMOD`).
    pub fn mul_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        // Russian-peasant multiplication in the modular ring avoids a 512-bit
        // division routine.
        let mut acc = U256::ZERO;
        let mut a = self.div_mod(modulus).1;
        let mut b = rhs;
        while !b.is_zero() {
            if b.bit(0) {
                acc = acc.add_mod(a, modulus);
            }
            a = a.add_mod(a, modulus);
            b = b >> 1;
        }
        acc
    }

    /// Exponentiation modulo 2^256 (EVM `EXP`).
    pub fn pow(self, mut exp: U256) -> U256 {
        let mut base = self;
        let mut acc = U256::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                acc = acc.overflowing_mul(base).0;
            }
            base = base.overflowing_mul(base).0;
            exp = exp >> 1;
        }
        acc
    }

    /// True iff bit 255 is set (the value is negative under two's
    /// complement interpretation, as EVM signed opcodes use).
    #[inline]
    pub fn is_negative_signed(&self) -> bool {
        self.bit(255)
    }

    /// Two's-complement negation modulo 2^256.
    #[inline]
    pub fn wrapping_neg(self) -> U256 {
        (!self).overflowing_add(U256::ONE).0
    }

    /// Signed division (EVM `SDIV`): truncated toward zero; division by
    /// zero yields zero; `MIN / -1` wraps to `MIN`.
    pub fn sdiv(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let neg = self.is_negative_signed() != rhs.is_negative_signed();
        let a = if self.is_negative_signed() {
            self.wrapping_neg()
        } else {
            self
        };
        let b = if rhs.is_negative_signed() {
            rhs.wrapping_neg()
        } else {
            rhs
        };
        let q = a / b;
        if neg {
            q.wrapping_neg()
        } else {
            q
        }
    }

    /// Signed remainder (EVM `SMOD`): sign follows the dividend; modulus by
    /// zero yields zero.
    pub fn smod(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let a = if self.is_negative_signed() {
            self.wrapping_neg()
        } else {
            self
        };
        let b = if rhs.is_negative_signed() {
            rhs.wrapping_neg()
        } else {
            rhs
        };
        let r = a % b;
        if self.is_negative_signed() {
            r.wrapping_neg()
        } else {
            r
        }
    }

    /// Signed less-than (EVM `SLT`).
    pub fn slt(&self, rhs: &U256) -> bool {
        match (self.is_negative_signed(), rhs.is_negative_signed()) {
            (true, false) => true,
            (false, true) => false,
            _ => self < rhs,
        }
    }

    /// Sign-extends from byte `k` (EVM `SIGNEXTEND`): byte 0 is the least
    /// significant; `k ≥ 31` is the identity.
    pub fn sign_extend(self, k: U256) -> U256 {
        let Some(k) = k.to_usize().filter(|&k| k < 31) else {
            return self;
        };
        let sign_bit = 8 * k + 7;
        if self.bit(sign_bit) {
            // Set all bits above the sign bit.
            self | (U256::MAX << (sign_bit as u32 + 1))
        } else {
            self & !(U256::MAX << (sign_bit as u32 + 1))
        }
    }

    /// Arithmetic right shift (EVM `SAR`): fills with the sign bit.
    pub fn sar(self, shift: u32) -> U256 {
        if shift >= 256 {
            return if self.is_negative_signed() {
                U256::MAX
            } else {
                U256::ZERO
            };
        }
        let logical = self >> shift;
        if self.is_negative_signed() && shift > 0 {
            logical | (U256::MAX << (256 - shift).min(255))
        } else {
            logical
        }
    }

    /// Big-endian 32-byte encoding.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Decodes a big-endian 32-byte encoding.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[(3 - i) * 8..(4 - i) * 8]);
            limbs[i] = u64::from_be_bytes(w);
        }
        U256(limbs)
    }

    /// Decodes a big-endian slice of at most 32 bytes (shorter slices are
    /// zero-extended on the left, as in RLP integer decoding).
    pub fn from_be_slice(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256::from_be_slice: more than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        Self::from_be_bytes(buf)
    }

    /// Minimal big-endian encoding with no leading zero bytes (empty for 0),
    /// as required when RLP-encoding integers.
    pub fn to_be_bytes_trimmed(&self) -> Vec<u8> {
        let full = self.to_be_bytes();
        let first = full.iter().position(|&b| b != 0).unwrap_or(32);
        full[first..].to_vec()
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<u8> for U256 {
    fn from(v: u8) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<usize> for U256 {
    fn from(v: usize) -> Self {
        U256::from_u64(v as u64)
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    /// Wrapping addition (EVM `ADD`).
    fn add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl Sub for U256 {
    type Output = U256;
    /// Wrapping subtraction (EVM `SUB`).
    fn sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }
}

impl SubAssign for U256 {
    fn sub_assign(&mut self, rhs: U256) {
        *self = *self - rhs;
    }
}

impl Mul for U256 {
    type Output = U256;
    /// Wrapping multiplication (EVM `MUL`).
    fn mul(self, rhs: U256) -> U256 {
        self.overflowing_mul(rhs).0
    }
}

impl Div for U256 {
    type Output = U256;
    /// EVM `DIV`: division by zero yields zero.
    fn div(self, rhs: U256) -> U256 {
        self.div_mod(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    /// EVM `MOD`: remainder by zero yields zero.
    fn rem(self, rhs: U256) -> U256 {
        self.div_mod(rhs).1
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    /// Left shift; shifts ≥ 256 yield zero (EVM `SHL`).
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift != 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    /// Logical right shift; shifts ≥ 256 yield zero (EVM `SHR`).
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate().take(4 - limb_shift) {
            *limb = self.0[i + limb_shift] >> bit_shift;
            if bit_shift != 0 && i + limb_shift + 1 < 4 {
                *limb |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Sum for U256 {
    fn sum<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{self:x})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = *self;
        let ten = U256::from_u64(10);
        while !cur.is_zero() {
            let (q, r) = cur.div_mod(ten);
            digits.push(b'0' + r.low_u64() as u8);
            cur = q;
        }
        digits.reverse();
        f.write_str(core::str::from_utf8(&digits).expect("decimal digits are ASCII"))
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:016x}", self.0[i])?;
            } else if self.0[i] != 0 || i == 0 {
                write!(f, "{:x}", self.0[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_basic_and_carry() {
        assert_eq!(u(2) + u(3), u(5));
        let max64 = U256::from_u64(u64::MAX);
        let sum = max64 + U256::ONE;
        assert_eq!(sum, U256([0, 1, 0, 0]));
    }

    #[test]
    fn add_wraps_at_max() {
        let (v, carry) = U256::MAX.overflowing_add(U256::ONE);
        assert!(carry);
        assert_eq!(v, U256::ZERO);
        assert_eq!(U256::MAX + U256::ONE, U256::ZERO);
    }

    #[test]
    fn sub_basic_and_borrow() {
        assert_eq!(u(5) - u(3), u(2));
        let (v, borrow) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(borrow);
        assert_eq!(v, U256::MAX);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(U256::MAX.checked_add(U256::ONE), None);
        assert_eq!(U256::ZERO.checked_sub(U256::ONE), None);
        assert_eq!(u(7).checked_add(u(8)), Some(u(15)));
        assert_eq!(U256::MAX.checked_mul(u(2)), None);
        assert_eq!(u(6).checked_mul(u(7)), Some(u(42)));
        assert_eq!(u(3).saturating_sub(u(10)), U256::ZERO);
    }

    #[test]
    fn mul_cross_limb() {
        let a = U256::from_u128(u128::MAX);
        let b = u(2);
        let expect = U256([u64::MAX - 1, u64::MAX, 1, 0]);
        assert_eq!(a * b, expect);
    }

    #[test]
    fn mul_overflow_detected() {
        let big = U256::ONE << 200;
        let (_, ovf) = big.overflowing_mul(big);
        assert!(ovf);
        let (_, ok) = (U256::ONE << 100).overflowing_mul(U256::ONE << 100);
        assert!(!ok);
    }

    #[test]
    fn div_mod_small() {
        let (q, r) = u(17).div_mod(u(5));
        assert_eq!((q, r), (u(3), u(2)));
    }

    #[test]
    fn div_mod_by_zero_is_zero() {
        assert_eq!(u(17) / U256::ZERO, U256::ZERO);
        assert_eq!(u(17) % U256::ZERO, U256::ZERO);
    }

    #[test]
    fn div_mod_large_divisor() {
        let a = (U256::ONE << 200) + u(12345);
        let b = (U256::ONE << 100) + u(7);
        let (q, r) = a.div_mod(b);
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    fn div_identity() {
        let a = U256([
            0x0123_4567_89ab_cdef,
            0xfedc_ba98_7654_3210,
            0xdead_beef,
            42,
        ]);
        let b = U256([99999, 1, 0, 0]);
        let (q, r) = a.div_mod(b);
        assert_eq!(q * b + r, a);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        assert_eq!(u(3).pow(u(0)), U256::ONE);
        assert_eq!(u(3).pow(u(7)), u(2187));
        assert_eq!(u(2).pow(u(255)), U256::ONE << 255);
        // 2^256 wraps to zero.
        assert_eq!(u(2).pow(u(256)), U256::ZERO);
    }

    #[test]
    fn add_mod_with_carry() {
        let m = u(1000);
        assert_eq!(u(999).add_mod(u(2), m), u(1));
        // Values whose sum wraps 2^256.
        let a = U256::MAX - u(1);
        let b = u(5);
        // (2^256 - 2 + 5) mod 7 == (2^256 + 3) mod 7
        let got = a.add_mod(b, u(7));
        // 2^256 mod 7: 2^256 = (2^3)^85 * 2 -> 8^85 ≡ 1^85, so 2^256 ≡ 2 (mod 7); +3 => 5.
        assert_eq!(got, u(5));
        assert_eq!(a.add_mod(b, U256::ZERO), U256::ZERO);
    }

    #[test]
    fn mul_mod_large() {
        let a = U256::ONE << 200;
        let b = U256::ONE << 100;
        // (2^300) mod (2^17 - 1): 2^300 = 2^(17*17 + 11) ≡ 2^11 (mod 2^17-1).
        let m = (U256::ONE << 17) - U256::ONE;
        assert_eq!(a.mul_mod(b, m), u(1 << 11));
        assert_eq!(a.mul_mod(b, U256::ZERO), U256::ZERO);
    }

    #[test]
    fn shifts() {
        assert_eq!(U256::ONE << 64, U256([0, 1, 0, 0]));
        assert_eq!(U256::ONE << 255 >> 255, U256::ONE);
        assert_eq!(U256::MAX << 256, U256::ZERO);
        assert_eq!(U256::MAX >> 256, U256::ZERO);
        assert_eq!(u(0b1010) >> 1, u(0b101));
        assert_eq!((U256([0, 0, 0, 1]) >> 192), U256::ONE);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!((U256::ONE << 200).bits(), 201);
        assert_eq!(U256::MAX.bits(), 256);
        assert!((U256::ONE << 77).bit(77));
        assert!(!(U256::ONE << 77).bit(78));
        assert!(!U256::MAX.bit(600));
    }

    #[test]
    fn byte_be_matches_evm_byte() {
        let v = U256::from_be_slice(&[0xAB, 0xCD]);
        assert_eq!(v.byte_be(31), 0xCD);
        assert_eq!(v.byte_be(30), 0xAB);
        assert_eq!(v.byte_be(0), 0);
        assert_eq!(v.byte_be(32), 0);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        let b = v.to_be_bytes();
        // Most significant limb (4) lands in the first 8 bytes.
        assert_eq!(&b[0..8], &4u64.to_be_bytes());
    }

    #[test]
    fn trimmed_bytes() {
        assert!(U256::ZERO.to_be_bytes_trimmed().is_empty());
        assert_eq!(u(0x0400).to_be_bytes_trimmed(), vec![0x04, 0x00]);
        assert_eq!(
            U256::from_be_slice(&[1, 0, 0]).to_be_bytes_trimmed(),
            vec![1, 0, 0]
        );
    }

    #[test]
    fn ordering() {
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(u(3) < u(4));
        assert_eq!(u(9).cmp(&u(9)), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(U256::ZERO.to_string(), "0");
        assert_eq!(u(1234567890).to_string(), "1234567890");
        assert_eq!(
            U256::MAX.to_string(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639935"
        );
    }

    #[test]
    fn hex_format() {
        assert_eq!(format!("{:x}", U256::ZERO), "0");
        assert_eq!(format!("{:x}", u(0xdeadbeef)), "deadbeef");
        assert_eq!(format!("{:x}", U256::ONE << 64), "10000000000000000");
    }

    #[test]
    fn signed_division() {
        let neg = |v: u64| U256::from(v).wrapping_neg();
        assert_eq!(neg(6).sdiv(U256::from(3u64)), neg(2));
        assert_eq!(U256::from(6u64).sdiv(neg(3)), neg(2));
        assert_eq!(neg(6).sdiv(neg(3)), U256::from(2u64));
        assert_eq!(U256::from(7u64).sdiv(U256::from(2u64)), U256::from(3u64));
        assert_eq!(neg(7).sdiv(U256::from(2u64)), neg(3)); // truncate toward zero
        assert_eq!(U256::from(5u64).sdiv(U256::ZERO), U256::ZERO);
        // MIN / -1 wraps to MIN (EVM rule).
        let min = U256::ONE << 255;
        assert_eq!(min.sdiv(neg(1)), min);
    }

    #[test]
    fn signed_remainder() {
        let neg = |v: u64| U256::from(v).wrapping_neg();
        assert_eq!(neg(7).smod(U256::from(3u64)), neg(1)); // sign of dividend
        assert_eq!(U256::from(7u64).smod(neg(3)), U256::ONE);
        assert_eq!(U256::from(7u64).smod(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn signed_comparison() {
        let neg_one = U256::MAX;
        assert!(neg_one.slt(&U256::ZERO));
        assert!(!U256::ZERO.slt(&neg_one));
        assert!(U256::ONE.slt(&U256::from(2u64)));
        assert!(neg_one.wrapping_neg().slt(&U256::from(2u64))); // 1 < 2
        assert!(!neg_one.slt(&neg_one));
    }

    #[test]
    fn sign_extension() {
        // 0xFF extended from byte 0 becomes -1.
        assert_eq!(U256::from(0xFFu64).sign_extend(U256::ZERO), U256::MAX);
        // 0x7F stays positive.
        assert_eq!(
            U256::from(0x7Fu64).sign_extend(U256::ZERO),
            U256::from(0x7Fu64)
        );
        // High bytes above k are masked off for positive values.
        assert_eq!(U256::from(0x1FFu64).sign_extend(U256::ZERO), U256::MAX);
        assert_eq!(
            U256::from(0x100FFu64).sign_extend(U256::ONE),
            U256::from(0xFFu64)
        );
        // k ≥ 31 is identity.
        assert_eq!(U256::MAX.sign_extend(U256::from(31u64)), U256::MAX);
        assert_eq!(U256::MAX.sign_extend(U256::from(1000u64)), U256::MAX);
    }

    #[test]
    fn arithmetic_shift_right() {
        let neg_four = U256::from(4u64).wrapping_neg();
        assert_eq!(neg_four.sar(1), U256::from(2u64).wrapping_neg());
        assert_eq!(U256::from(4u64).sar(1), U256::from(2u64));
        assert_eq!(neg_four.sar(300), U256::MAX);
        assert_eq!(U256::from(4u64).sar(300), U256::ZERO);
        assert_eq!(U256::MAX.sar(255), U256::MAX);
    }

    #[test]
    fn wrapping_neg_roundtrip() {
        for v in [0u64, 1, 12345, u64::MAX] {
            let x = U256::from(v);
            assert_eq!(x.wrapping_neg().wrapping_neg(), x);
        }
        assert_eq!(U256::ZERO.wrapping_neg(), U256::ZERO);
    }

    #[test]
    fn sum_iterator() {
        let total: U256 = (1..=10u64).map(U256::from).sum();
        assert_eq!(total, u(55));
    }
}
