//! Property-based tests for U256 arithmetic laws.

use bp_types::U256;
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    // Mix of full-range values and small/structured ones so carries, borrows
    // and limb boundaries all get exercised.
    prop_oneof![
        any::<[u64; 4]>().prop_map(U256),
        any::<u64>().prop_map(U256::from_u64),
        (any::<u64>(), 0u32..256).prop_map(|(v, s)| U256::from_u64(v) << s),
        Just(U256::ZERO),
        Just(U256::ONE),
        Just(U256::MAX),
    ]
}

proptest! {
    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associates(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn sub_is_add_of_wrapping_negation(a in arb_u256(), b in arb_u256()) {
        // a - b == a + (2^256 - b)  (mod 2^256)
        let neg_b = U256::ZERO - b;
        prop_assert_eq!(a - b, a + neg_b);
    }

    #[test]
    fn mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_distributes_over_add(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn mul_identity_and_zero(a in arb_u256()) {
        prop_assert_eq!(a * U256::ONE, a);
        prop_assert_eq!(a * U256::ZERO, U256::ZERO);
    }

    #[test]
    fn div_mod_reconstructs(a in arb_u256(), b in arb_u256()) {
        let (q, r) = a.div_mod(b);
        if b.is_zero() {
            prop_assert_eq!(q, U256::ZERO);
            prop_assert_eq!(r, U256::ZERO);
        } else {
            prop_assert!(r < b);
            prop_assert_eq!(q * b + r, a);
            // q*b must not overflow when reconstructing.
            prop_assert!(q.checked_mul(b).is_some());
        }
    }

    #[test]
    fn add_mod_matches_wide_semantics(a in arb_u256(), b in arb_u256(), m in arb_u256()) {
        let got = a.add_mod(b, m);
        if m.is_zero() {
            prop_assert_eq!(got, U256::ZERO);
        } else {
            prop_assert!(got < m);
            // Check against the definition via 128-bit arithmetic when
            // everything fits.
            if let (Some(ax), Some(bx), Some(mx)) = (a.to_u64(), b.to_u64(), m.to_u64()) {
                prop_assert_eq!(got, U256::from(((ax as u128 + bx as u128) % mx as u128) as u64));
            }
        }
    }

    #[test]
    fn mul_mod_matches_small_case(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let got = U256::from(a).mul_mod(U256::from(b), U256::from(m));
        let expect = ((a as u128 * b as u128) % m as u128) as u64;
        prop_assert_eq!(got, U256::from(expect));
    }

    #[test]
    fn shifts_compose(a in arb_u256(), s in 0u32..256, t in 0u32..256) {
        let both = s.saturating_add(t);
        prop_assert_eq!((a << s) << t, a << both.min(256));
        prop_assert_eq!((a >> s) >> t, a >> both.min(256));
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in arb_u256(), s in 0u32..255) {
        prop_assert_eq!(a << s, a * U256::from(2u64).pow(U256::from(s as u64)));
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
        prop_assert_eq!(U256::from_be_slice(&a.to_be_bytes_trimmed()), a);
    }

    #[test]
    fn trimmed_bytes_no_leading_zero(a in arb_u256()) {
        let t = a.to_be_bytes_trimmed();
        if !t.is_empty() {
            prop_assert_ne!(t[0], 0);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn ordering_consistent_with_sub(a in arb_u256(), b in arb_u256()) {
        let (_, borrow) = a.overflowing_sub(b);
        prop_assert_eq!(borrow, a < b);
    }

    #[test]
    fn bitops_de_morgan(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(!(a & b), !a | !b);
        prop_assert_eq!(!(a | b), !a & !b);
    }

    #[test]
    fn display_parse_roundtrip_small(v in any::<u64>()) {
        let s = U256::from(v).to_string();
        prop_assert_eq!(s.parse::<u64>().unwrap(), v);
    }

    #[test]
    fn pow_addition_law_small(b in 0u64..32, e1 in 0u64..8, e2 in 0u64..8) {
        // b^(e1+e2) == b^e1 * b^e2 when everything fits in 256 bits
        // (32^16 < 2^80, so it always fits here).
        let base = U256::from(b);
        prop_assert_eq!(
            base.pow(U256::from(e1 + e2)),
            base.pow(U256::from(e1)) * base.pow(U256::from(e2))
        );
    }
}
