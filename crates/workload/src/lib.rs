//! Synthetic mainnet-like workload generation.
//!
//! The paper evaluates on real Ethereum blocks (100k blocks from height 10M,
//! average 132 transactions per block). Those traces are not redistributable,
//! so this crate generates *statistically equivalent* blocks instead,
//! calibrated to the conflict structure the paper reports:
//!
//! * a transaction mix of plain value transfers, token (ERC-20-like)
//!   transfers, and constant-product AMM swaps — the DeFi pattern §5.5
//!   identifies as the hotspot problem;
//! * Zipf-distributed account and contract popularity (a handful of hotspot
//!   contracts attract a large share of traffic);
//! * a mean largest-dependency-subgraph ratio around the paper's reported
//!   27.5% at account-level conflict granularity (Figure 8).
//!
//! Everything is seeded: the same [`WorkloadConfig`] reproduces the same
//! chain of blocks bit-for-bit.

#![warn(missing_docs)]

pub mod zipf;

use bp_evm::{contracts, BlockEnv, Transaction};
use bp_state::WorldState;
use bp_types::{Address, Gas, U256};
use rand::{rngs::StdRng, Rng, SeedableRng};

pub use zipf::Zipf;

/// Transaction-mix fractions (normalized internally).
#[derive(Clone, Copy, Debug)]
pub struct TxMix {
    /// Plain value transfers between EOAs.
    pub transfer: f64,
    /// Token-contract transfers (per-holder slots; conflicts via shared
    /// holders at slot granularity, via the contract at account granularity).
    pub token: f64,
    /// AMM swaps (global reserve slots: every swap on a pair conflicts).
    pub amm: f64,
    /// Blind registry writes (pure WAW conflicts; zero in the default mix,
    /// used by the WSI-vs-OCC ablation).
    pub blind: f64,
    /// NFT mints against a single collection (every mint reads *and*
    /// writes the global supply counter: the worst-case single-hot-key
    /// regime; zero in the default mix, used by the mint-storm sweep).
    pub mint: f64,
}

impl Default for TxMix {
    fn default() -> Self {
        // Calibrated so the mean largest-subgraph ratio lands near the
        // paper's 27.5% at account granularity (see calibration test).
        TxMix {
            transfer: 0.60,
            token: 0.36,
            amm: 0.04,
            blind: 0.0,
            mint: 0.0,
        }
    }
}

/// Workload generator configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// RNG seed; equal configs generate identical chains.
    pub seed: u64,
    /// Number of externally-owned accounts.
    pub accounts: usize,
    /// Number of token contracts.
    pub tokens: usize,
    /// Number of AMM pairs (the hotspots).
    pub amm_pairs: usize,
    /// Mean transactions per block (paper: 132).
    pub txs_per_block: usize,
    /// Uniform jitter around the mean (±).
    pub tx_jitter: usize,
    /// The transaction mix.
    pub mix: TxMix,
    /// Zipf exponent for sender/recipient popularity.
    pub zipf_accounts: f64,
    /// Zipf exponent for contract popularity.
    pub zipf_contracts: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0xB10C_9107,
            accounts: 1000,
            tokens: 10,
            amm_pairs: 4,
            txs_per_block: 132,
            tx_jitter: 24,
            mix: TxMix::default(),
            zipf_accounts: 0.50,
            zipf_contracts: 1.05,
        }
    }
}

impl WorkloadConfig {
    /// The NFT-mint-storm preset: every transaction mints from the single
    /// collection, so every transaction reads and writes the same supply
    /// counter. This is the extreme end of the contention spectrum — a
    /// fully serialized dependency chain — used to A/B proposer engines
    /// under a single hot key.
    pub fn nft_mint_storm() -> Self {
        WorkloadConfig {
            mix: TxMix {
                transfer: 0.0,
                token: 0.0,
                amm: 0.0,
                blind: 0.0,
                mint: 1.0,
            },
            // Many distinct senders so the pool's per-sender nonce gating
            // does not cap block size.
            zipf_accounts: 0.0,
            ..WorkloadConfig::default()
        }
    }
}

/// Initial funding per EOA.
const EOA_FUNDS: u64 = u64::MAX / 2;
/// Initial token balance per holder.
const TOKEN_FUNDS: u64 = 1_000_000_000_000;
/// Initial AMM reserves.
const AMM_RESERVE: u64 = 1_000_000_000_000;

/// A deterministic block-stream generator.
pub struct WorkloadGen {
    config: WorkloadConfig,
    rng: StdRng,
    nonces: Vec<u64>,
    acct_dist: Zipf,
    token_dist: Zipf,
    pair_dist: Zipf,
    height: u64,
}

impl WorkloadGen {
    /// A generator for `config`.
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.accounts >= 2);
        assert!(config.tokens >= 1);
        assert!(config.amm_pairs >= 1);
        let rng = StdRng::seed_from_u64(config.seed);
        WorkloadGen {
            acct_dist: Zipf::new(config.accounts, config.zipf_accounts),
            token_dist: Zipf::new(config.tokens, config.zipf_contracts),
            pair_dist: Zipf::new(config.amm_pairs, config.zipf_contracts),
            nonces: vec![0; config.accounts],
            rng,
            height: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The `i`-th EOA address.
    pub fn account(&self, i: usize) -> Address {
        Address::from_index(1_000_000 + i as u64)
    }

    /// The `i`-th token contract address.
    pub fn token_address(&self, i: usize) -> Address {
        Address::from_index(2_000_000 + i as u64)
    }

    /// The `i`-th AMM pair address.
    pub fn amm_address(&self, i: usize) -> Address {
        Address::from_index(3_000_000 + i as u64)
    }

    /// The blind-write registry address (one per world).
    pub fn registry_address(&self) -> Address {
        Address::from_index(4_000_000)
    }

    /// The NFT collection address (one per world).
    pub fn nft_address(&self) -> Address {
        Address::from_index(5_000_000)
    }

    /// Builds the genesis world: funded EOAs, deployed token and AMM
    /// contracts with seeded balances/reserves.
    pub fn genesis_state(&self) -> WorldState {
        let mut w = WorldState::new();
        for i in 0..self.config.accounts {
            w.set_balance(self.account(i), U256::from(EOA_FUNDS));
        }
        for t in 0..self.config.tokens {
            let token = self.token_address(t);
            w.set_code(token, contracts::token());
            for i in 0..self.config.accounts {
                w.set_storage(
                    token,
                    contracts::token_balance_slot(&self.account(i)),
                    U256::from(TOKEN_FUNDS),
                );
            }
        }
        for p in 0..self.config.amm_pairs {
            let pair = self.amm_address(p);
            w.set_code(pair, contracts::amm_pair());
            w.set_storage(
                pair,
                contracts::amm_reserve_slot(0),
                U256::from(AMM_RESERVE),
            );
            w.set_storage(
                pair,
                contracts::amm_reserve_slot(1),
                U256::from(AMM_RESERVE),
            );
        }
        w.set_code(self.registry_address(), contracts::registry());
        w.set_code(self.nft_address(), contracts::nft());
        w
    }

    /// The execution environment for the block at `height`.
    pub fn block_env(&self, height: u64) -> BlockEnv {
        BlockEnv {
            number: height,
            timestamp: 1_700_000_000 + height * 12,
            ..BlockEnv::default()
        }
    }

    /// Generates the next block's transactions. Same-sender transactions
    /// carry consecutive nonces in emission order, so the emitted order is a
    /// valid serial schedule.
    pub fn next_block_txs(&mut self) -> Vec<Transaction> {
        self.height += 1;
        let jitter = if self.config.tx_jitter == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.config.tx_jitter * 2) as i64 - self.config.tx_jitter as i64
        };
        let count = (self.config.txs_per_block as i64 + jitter).max(1) as usize;
        let mut txs = Vec::with_capacity(count);
        let mix = self.config.mix;
        let total = mix.transfer + mix.token + mix.amm + mix.blind + mix.mint;
        let p_transfer = mix.transfer / total;
        let p_token = mix.token / total;
        let p_amm = mix.amm / total;
        let p_blind = mix.blind / total;
        for _ in 0..count {
            let roll: f64 = self.rng.gen();
            let tx = if roll < p_transfer {
                self.gen_transfer()
            } else if roll < p_transfer + p_token {
                self.gen_token_transfer()
            } else if roll < p_transfer + p_token + p_amm {
                self.gen_amm_swap()
            } else if roll < p_transfer + p_token + p_amm + p_blind {
                self.gen_blind_write()
            } else {
                self.gen_mint()
            };
            txs.push(tx);
        }
        txs
    }

    fn next_sender(&mut self) -> (Address, u64) {
        let idx = self.acct_dist.sample(&mut self.rng);
        let nonce = self.nonces[idx];
        self.nonces[idx] += 1;
        (self.account(idx), nonce)
    }

    fn gas_price(&mut self) -> u64 {
        self.rng.gen_range(1..=100)
    }

    fn gen_transfer(&mut self) -> Transaction {
        let (sender, nonce) = self.next_sender();
        let to_idx = self.acct_dist.sample(&mut self.rng);
        let to = self.account(to_idx);
        let value = U256::from(self.rng.gen_range(1..=1000u64));
        let gas_price = self.gas_price();
        Transaction::transfer(sender, to, value, nonce, gas_price)
    }

    fn gen_token_transfer(&mut self) -> Transaction {
        let (sender, nonce) = self.next_sender();
        let token_idx = self.token_dist.sample(&mut self.rng);
        let token = self.token_address(token_idx);
        let to_idx = self.acct_dist.sample(&mut self.rng);
        let to = self.account(to_idx);
        let amount = U256::from(self.rng.gen_range(1..=1000u64));
        Transaction {
            sender,
            to: Some(token),
            value: U256::ZERO,
            nonce,
            gas_limit: 300_000,
            gas_price: self.gas_price(),
            data: contracts::token_transfer_calldata(&to, amount),
        }
    }

    fn gen_amm_swap(&mut self) -> Transaction {
        let (sender, nonce) = self.next_sender();
        let pair_idx = self.pair_dist.sample(&mut self.rng);
        let pair = self.amm_address(pair_idx);
        let dir = self.rng.gen_range(0..2u8);
        let amount = U256::from(self.rng.gen_range(100..=10_000u64));
        Transaction {
            sender,
            to: Some(pair),
            value: U256::ZERO,
            nonce,
            gas_limit: 300_000,
            gas_price: self.gas_price(),
            data: contracts::amm_swap_calldata(dir, amount),
        }
    }

    fn gen_mint(&mut self) -> Transaction {
        let (sender, nonce) = self.next_sender();
        Transaction {
            sender,
            to: Some(self.nft_address()),
            value: U256::ZERO,
            nonce,
            gas_limit: 100_000,
            gas_price: self.gas_price(),
            data: Vec::new(),
        }
    }

    fn gen_blind_write(&mut self) -> Transaction {
        let (sender, nonce) = self.next_sender();
        let value = U256::from(self.rng.gen_range(1..=u64::MAX));
        Transaction {
            sender,
            to: Some(self.registry_address()),
            value: U256::ZERO,
            nonce,
            gas_limit: 100_000,
            gas_price: self.gas_price(),
            data: contracts::registry_calldata(value),
        }
    }

    /// Current chain height (number of blocks generated).
    pub fn height(&self) -> u64 {
        self.height
    }
}

/// Default per-transaction gas-limit headroom used by harnesses when
/// estimating block capacity.
pub const TYPICAL_TX_GAS: Gas = 60_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadGen::new(WorkloadConfig::default());
        let mut b = WorkloadGen::new(WorkloadConfig::default());
        assert_eq!(a.next_block_txs(), b.next_block_txs());
        assert_eq!(a.next_block_txs(), b.next_block_txs());
        let mut c = WorkloadGen::new(WorkloadConfig {
            seed: 999,
            ..Default::default()
        });
        assert_ne!(a.next_block_txs(), c.next_block_txs());
    }

    #[test]
    fn block_sizes_track_the_mean() {
        let mut gen = WorkloadGen::new(WorkloadConfig::default());
        let sizes: Vec<usize> = (0..50).map(|_| gen.next_block_txs().len()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((mean - 132.0).abs() < 15.0, "mean {mean}");
        for &s in &sizes {
            assert!((132 - 24..=132 + 24).contains(&s));
        }
    }

    #[test]
    fn nonces_are_consecutive_per_sender() {
        let mut gen = WorkloadGen::new(WorkloadConfig::default());
        let mut seen: std::collections::HashMap<Address, u64> = Default::default();
        for _ in 0..5 {
            for tx in gen.next_block_txs() {
                let next = seen.entry(tx.sender).or_insert(0);
                assert_eq!(tx.nonce, *next, "nonce gap for {:?}", tx.sender);
                *next += 1;
            }
        }
    }

    #[test]
    fn genesis_contains_contracts_and_funds() {
        let gen = WorkloadGen::new(WorkloadConfig::default());
        let w = gen.genesis_state();
        assert_eq!(w.balance(&gen.account(0)), U256::from(EOA_FUNDS));
        assert!(!w.code(&gen.token_address(0)).is_empty());
        assert!(!w.code(&gen.amm_address(0)).is_empty());
        assert_eq!(
            w.storage(&gen.amm_address(0), &contracts::amm_reserve_slot(0)),
            U256::from(AMM_RESERVE)
        );
        assert_eq!(
            w.storage(
                &gen.token_address(0),
                &contracts::token_balance_slot(&gen.account(5))
            ),
            U256::from(TOKEN_FUNDS)
        );
    }

    #[test]
    fn generated_blocks_execute_serially() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            txs_per_block: 40,
            tx_jitter: 0,
            ..Default::default()
        });
        let genesis = gen.genesis_state();
        let env = gen.block_env(1);
        let txs = gen.next_block_txs();
        let out = bp_baseline_shim::execute(&genesis, &env, &txs);
        assert_eq!(out, txs.len(), "all generated txs must be includable");
    }

    /// Minimal serial executor to avoid a dev-dependency cycle with
    /// bp-baseline (which depends on nothing here, but keep layering clean).
    mod bp_baseline_shim {
        use bp_evm::{execute_transaction, BlockEnv, Transaction, WorldView};
        use bp_state::WorldState;

        pub fn execute(base: &WorldState, env: &BlockEnv, txs: &[Transaction]) -> usize {
            let mut world = base.snapshot();
            let mut ok = 0;
            for tx in txs {
                let result = {
                    let view = WorldView::new(&world);
                    execute_transaction(&view, env, tx).expect("includable")
                };
                world.apply_writes(&result.rw.writes);
                ok += 1;
            }
            ok
        }
    }

    #[test]
    fn mint_storm_targets_the_single_collection() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            txs_per_block: 30,
            tx_jitter: 0,
            ..WorkloadConfig::nft_mint_storm()
        });
        let genesis = gen.genesis_state();
        assert!(!genesis.code(&gen.nft_address()).is_empty());
        let env = gen.block_env(1);
        let txs = gen.next_block_txs();
        for tx in &txs {
            assert_eq!(tx.to, Some(gen.nft_address()));
            assert!(tx.data.is_empty());
        }
        let ok = bp_baseline_shim::execute(&genesis, &env, &txs);
        assert_eq!(ok, txs.len());
    }

    #[test]
    fn mix_produces_all_three_kinds() {
        let mut gen = WorkloadGen::new(WorkloadConfig::default());
        let txs = gen.next_block_txs();
        let transfers = txs.iter().filter(|t| t.data.is_empty()).count();
        let token_addr_space: Vec<Address> = (0..8).map(|i| gen.token_address(i)).collect();
        let tokens = txs
            .iter()
            .filter(|t| t.to.map(|a| token_addr_space.contains(&a)).unwrap_or(false))
            .count();
        let amms = txs.len() - transfers - tokens;
        assert!(
            transfers > 0 && tokens > 0 && amms > 0,
            "{transfers}/{tokens}/{amms}"
        );
    }
}
