//! A Zipf-distributed sampler over `{0, 1, ..., n-1}`.
//!
//! Account popularity on Ethereum is heavy-tailed: a few hotspot contracts
//! and exchange wallets attract a large share of all transactions (the
//! paper's §5.5). The workload generator draws senders, recipients and
//! contracts from this distribution.

use rand::Rng;

/// Inverse-CDF Zipf sampler: `P(k) ∝ 1 / (k+1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` is uniform;
    /// larger `s` is more skewed; Ethereum-like workloads use `s ≈ 1`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the domain has one element.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn histogram(zipf: &Zipf, draws: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; zipf.len()];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn all_samples_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(20, 1.2);
        let counts = histogram(&z, 50_000);
        // Rank 0 clearly dominates rank 10.
        assert!(counts[0] > counts[10] * 3, "{counts:?}");
        // Monotone (roughly): first rank is the mode.
        assert_eq!(counts.iter().max(), Some(&counts[0]));
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let counts = histogram(&z, 40_000);
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn single_element_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn zipf_frequencies_match_theory() {
        // For s=1, P(0)/P(1) = 2.
        let z = Zipf::new(50, 1.0);
        let counts = histogram(&z, 200_000);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }
}
