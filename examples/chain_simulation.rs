//! Chain simulation: a proposer and a validator advance a mainnet-like
//! chain block by block — the full BlockPilot loop of Figure 3.
//!
//! Run with `cargo run --release --example chain_simulation`.

use std::sync::Arc;
use std::time::Instant;

use blockpilot::core::{ConflictGranularity, OccWsiConfig, PipelineConfig, Proposer, Validator};
use blockpilot::workload::{WorkloadConfig, WorkloadGen};

fn main() {
    let blocks = 6u64;
    let mut gen = WorkloadGen::new(WorkloadConfig {
        txs_per_block: 50,
        tx_jitter: 10,
        accounts: 200,
        ..WorkloadConfig::default()
    });
    let genesis = gen.genesis_state();
    let validator = Validator::new(
        PipelineConfig {
            workers: 4,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        },
        genesis.clone(),
    );

    let mut parent = validator.genesis_hash();
    let mut state = Arc::new(genesis);
    let mut total_txs = 0usize;
    let t0 = Instant::now();

    for height in 1..=blocks {
        let proposer = Proposer::new(OccWsiConfig {
            threads: 4,
            env: gen.block_env(height),
            ..OccWsiConfig::default()
        });
        proposer.submit_transactions(gen.next_block_txs());
        let proposal = proposer.propose_block(Arc::clone(&state), parent, height);
        let n = proposal.block.tx_count();
        let aborts = proposal.stats.aborts;

        let outcome = validator.validate_and_commit(proposal.block.clone());
        assert!(outcome.is_valid(), "height {height}: {:?}", outcome.result);

        println!(
            "height {height}: {n:>3} txs, {aborts} proposer aborts, \
             validated in {:?} (exec {:?})",
            outcome.timings.prepare + outcome.timings.execute + outcome.timings.validate,
            outcome.timings.execute,
        );
        parent = proposal.block.hash();
        state = Arc::new(proposal.post_state);
        total_txs += n;
    }

    let elapsed = t0.elapsed();
    let (head, height) = validator.head().expect("chain advanced");
    println!("\nchain head  : height {height} ({head:?})");
    println!(
        "throughput  : {total_txs} txs across {blocks} blocks in {elapsed:?} \
         ({:.0} tx/s end-to-end on this machine)",
        total_txs as f64 / elapsed.as_secs_f64()
    );
}
