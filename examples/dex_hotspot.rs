//! The hotspot problem (§5.5): a DeFi-style block where every swap hits one
//! AMM pair, throttling parallelism — visible directly in the dependency
//! schedule the validator builds.
//!
//! Run with `cargo run --release --example dex_hotspot`.

use std::sync::Arc;

use blockpilot::baseline::execute_block_serially;
use blockpilot::core::{ConflictGranularity, OccWsiConfig, Proposer, Scheduler};
use blockpilot::evm::{contracts, BlockEnv, Transaction};
use blockpilot::sim::{simulate_validator, CostModel};
use blockpilot::state::WorldState;
use blockpilot::types::{Address, BlockHash, U256};

fn main() {
    let amm = Address::from_index(500);
    let mut genesis = WorldState::new();
    genesis.set_code(amm, contracts::amm_pair());
    genesis.set_storage(
        amm,
        contracts::amm_reserve_slot(0),
        U256::from(10_000_000u64),
    );
    genesis.set_storage(
        amm,
        contracts::amm_reserve_slot(1),
        U256::from(10_000_000u64),
    );
    for i in 1..=40u64 {
        genesis.set_balance(Address::from_index(i), U256::from(1_000_000_000u64));
    }
    let genesis = Arc::new(genesis);

    // Compare two blocks: all-transfers (embarrassingly parallel) vs
    // half-swaps (hotspot-bound).
    for (name, swap_share) in [("transfer-only", 0.0f64), ("50% DEX swaps", 0.5)] {
        let proposer = Proposer::new(OccWsiConfig {
            threads: 8,
            ..OccWsiConfig::default()
        });
        for i in 1..=40u64 {
            let tx = if (i as f64) <= 40.0 * swap_share {
                Transaction {
                    sender: Address::from_index(i),
                    to: Some(amm),
                    value: U256::ZERO,
                    nonce: 0,
                    gas_limit: 300_000,
                    gas_price: 1,
                    data: contracts::amm_swap_calldata((i % 2) as u8, U256::from(1000 + i)),
                }
            } else {
                Transaction::transfer(
                    Address::from_index(i),
                    Address::from_index(i + 100),
                    U256::from(5u64),
                    0,
                    1,
                )
            };
            proposer.submit_transaction(tx);
        }
        let proposal = proposer.propose_block(Arc::clone(&genesis), BlockHash::ZERO, 1);

        // The validator-side dependency analysis over the block profile.
        let schedule =
            Scheduler::new(ConflictGranularity::Account).schedule(&proposal.block.profile, 16);
        let sim = simulate_validator(&schedule, &proposal.block.profile, &CostModel::default());
        println!("--- {name} ---");
        println!("  txs                  : {}", proposal.block.tx_count());
        println!("  proposer aborts      : {}", proposal.stats.aborts);
        println!("  dependency subgraphs : {}", schedule.subgraphs.len());
        println!(
            "  largest subgraph     : {:.0}% of the block",
            100.0 * schedule.largest_subgraph_ratio()
        );
        println!(
            "  validator speedup    : {:.2}x at 16 threads (gas-time)",
            sim.speedup
        );

        // Sanity: the block replays serially to the same root.
        let serial =
            execute_block_serially(&genesis, &BlockEnv::default(), &proposal.block.transactions)
                .expect("replayable");
        assert_eq!(
            serial.post_state.state_root(),
            proposal.block.header.state_root
        );
        println!("  serial replay        : state root matches\n");
    }
    println!("Swaps on one pair serialize (they all read+write both reserve slots),");
    println!("so the hotspot block's largest subgraph swallows the swap share and the");
    println!("speedup collapses toward the paper's Figure 8 curve.");
}
