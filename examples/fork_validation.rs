//! Forks: two proposers publish competing blocks at the same height; the
//! validator pipeline executes both **concurrently** (the paper's Figure 5
//! overlap), commits one as canonical and tracks the other as an uncle.
//!
//! Run with `cargo run --release --example fork_validation`.

use std::sync::Arc;

use blockpilot::core::{ConflictGranularity, OccWsiConfig, PipelineConfig, Proposer, Validator};
use blockpilot::evm::{BlockEnv, Transaction};
use blockpilot::state::WorldState;
use blockpilot::types::{Address, U256};

fn main() {
    let mut genesis = WorldState::new();
    for i in 1..=20u64 {
        genesis.set_balance(Address::from_index(i), U256::from(1_000_000u64));
    }
    let genesis_state = Arc::new(genesis.clone());
    let validator = Validator::new(
        PipelineConfig {
            workers: 4,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        },
        genesis,
    );

    // Two proposers pick different transaction subsets for height 1 (and
    // stamp different proposer seeds via the block env number).
    let make_proposal = |senders: std::ops::Range<u64>, seed: u64| {
        let proposer = Proposer::new(OccWsiConfig {
            threads: 4,
            env: BlockEnv {
                number: seed,
                ..BlockEnv::default()
            },
            ..OccWsiConfig::default()
        });
        for i in senders {
            proposer.submit_transaction(Transaction::transfer(
                Address::from_index(i),
                Address::from_index(i + 100),
                U256::from(10u64),
                0,
                i,
            ));
        }
        proposer.propose_block(Arc::clone(&genesis_state), validator.genesis_hash(), 1)
    };
    let block_a = make_proposal(1..11, 1).block;
    let block_b = make_proposal(11..21, 1).block;
    println!(
        "proposer A block: {:?} ({} txs)",
        block_a.hash(),
        block_a.tx_count()
    );
    println!(
        "proposer B block: {:?} ({} txs)",
        block_b.hash(),
        block_b.tx_count()
    );
    assert_ne!(block_a.hash(), block_b.hash());

    // The validator receives both — they validate concurrently in the
    // pipeline because they share the same parent state (same height).
    let handle_a = validator.receive_block(block_a.clone());
    let handle_b = validator.receive_block(block_b);
    let outcome_a = handle_a.wait();
    let outcome_b = handle_b.wait();
    println!(
        "validation: A = {}, B = {}",
        if outcome_a.is_valid() {
            "VALID"
        } else {
            "REJECTED"
        },
        if outcome_b.is_valid() {
            "VALID"
        } else {
            "REJECTED"
        },
    );
    assert!(outcome_a.is_valid() && outcome_b.is_valid());

    // Consensus picks A; B becomes an uncle (it still earned validation —
    // this is exactly why validators execute more blocks than proposers,
    // §3.4, and why the multi-block pipeline exists). Marking canonical is
    // the local equivalent of the fork-choice decision arriving from
    // consensus; re-submitting an already-validated block is cheap because
    // the pipeline holds its post-state.
    let committed = validator.validate_and_commit(block_a);
    assert!(committed.is_valid());
    println!(
        "canonical head : height {}, blocks at height 1: {}, uncles: {}",
        validator.head().expect("head").1,
        validator.blocks_at(1),
        validator.uncles_at(1),
    );
    assert_eq!(validator.blocks_at(1), 2);
    assert_eq!(validator.uncles_at(1), 1);
}
