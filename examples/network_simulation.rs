//! DiCE network simulation: four validator nodes, round-robin proposers,
//! seeded link latencies, periodic forks — the whole
//! Dissemination-Consensus-Execution loop of the paper's §3.2, ending in a
//! converged canonical chain on every node.
//!
//! Run with `cargo run --release --example network_simulation`.

use blockpilot::net::{run_network, NetConfig};

fn main() {
    let config = NetConfig {
        nodes: 4,
        heights: 8,
        fork_every: 2,
        latency: 1..45,
        ticks_per_height: 20,
        ..NetConfig::default()
    };
    println!(
        "simulating {} nodes × {} heights (fork every {} heights, latency {:?} ticks)...\n",
        config.nodes, config.heights, config.fork_every, config.latency
    );
    let report = run_network(config);
    println!("heights processed        : {}", report.heights);
    println!("forked heights           : {}", report.forks);
    println!("uncle blocks             : {}", report.uncles);
    println!("canonical transactions   : {}", report.total_txs);
    println!(
        "out-of-order deliveries  : {}",
        report.out_of_order_deliveries
    );
    println!("converged                : {}", report.converged);
    println!("final state root         : {:?}", report.final_root);
    println!("delivery latency (ticks) :");
    for (node, stats) in report.delivery_latency.iter().enumerate() {
        println!(
            "  node {node}: min {} / avg {:.1} / max {} over {} deliveries",
            stats.min, stats.avg, stats.max, stats.deliveries
        );
    }
    assert!(report.converged);
    println!("\nEvery node validated every competing block (validators execute more");
    println!("blocks than proposers, §3.4), parked children that arrived before their");
    println!("parents, and converged on the identical MPT root.");
}
