//! Quickstart: propose a block in parallel with OCC-WSI, then validate it
//! through the four-stage pipeline.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use blockpilot::core::{ConflictGranularity, OccWsiConfig, PipelineConfig, Proposer, Validator};
use blockpilot::evm::Transaction;
use blockpilot::state::WorldState;
use blockpilot::types::{Address, U256};

fn main() {
    // 1. A genesis world with ten funded accounts.
    let mut genesis = WorldState::new();
    for i in 1..=10u64 {
        genesis.set_balance(Address::from_index(i), U256::from(1_000_000u64));
    }
    println!("genesis state root: {:?}", genesis.state_root());

    // 2. A validator node (owns the chain store and the pipeline).
    let validator = Validator::new(
        PipelineConfig {
            workers: 4,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        },
        genesis.clone(),
    );

    // 3. A proposer node: submit ten transfers and pack a block with the
    //    OCC-WSI parallel executor (Algorithm 1).
    let proposer = Proposer::new(OccWsiConfig {
        threads: 4,
        ..OccWsiConfig::default()
    });
    for i in 1..=10u64 {
        proposer.submit_transaction(Transaction::transfer(
            Address::from_index(i),
            Address::from_index(i % 10 + 1),
            U256::from(100u64),
            0,
            i, // gas price = selection priority
        ));
    }
    let proposal = proposer.propose_block(Arc::new(genesis), validator.genesis_hash(), 1);
    println!(
        "proposed block   : {} txs, {} gas, {} aborts during packing",
        proposal.block.tx_count(),
        proposal.block.header.gas_used,
        proposal.stats.aborts,
    );
    println!(
        "block profile    : {} read/write-set entries",
        proposal.block.profile.len()
    );

    // 4. The validator re-executes the block in parallel lanes and checks
    //    every footprint against the profile, then the MPT state root.
    let outcome = validator.validate_and_commit(proposal.block);
    println!(
        "validation       : {} (prepare {:?}, execute {:?}, validate {:?})",
        if outcome.is_valid() {
            "VALID"
        } else {
            "REJECTED"
        },
        outcome.timings.prepare,
        outcome.timings.execute,
        outcome.timings.validate,
    );
    let (head, height) = validator.head().expect("committed");
    println!("canonical head   : height {height}, hash {head:?}");
    assert!(outcome.is_valid());
}
