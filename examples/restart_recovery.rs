//! Kill-and-reopen recovery: a store-backed validator grows a chain, is
//! dropped without ceremony ("power cut"), and a fresh process reopens the
//! same directory — cold-start replay recovers the exact durable head and
//! the node keeps extending the chain.
//!
//! Run with `cargo run --release --example restart_recovery`.

use std::sync::Arc;

use blockpilot::core::validator::ROOT_RETENTION;
use blockpilot::evm::{BlockEnv, Transaction};
use blockpilot::state::WorldState;
use blockpilot::store::Store;
use blockpilot::txpool::TxPool;
use blockpilot::types::{Address, U256};
use blockpilot::{ConflictGranularity, OccWsiConfig, OccWsiProposer, PipelineConfig, Validator};

fn genesis_world() -> WorldState {
    let mut w = WorldState::new();
    for i in 1..=60u64 {
        w.set_balance(Address::from_index(i), U256::from(1_000_000_000u64));
    }
    w
}

fn config() -> PipelineConfig {
    PipelineConfig {
        workers: 2,
        granularity: ConflictGranularity::Account,
        ..Default::default()
    }
}

/// Proposes and commits `heights` blocks of simple transfers.
fn grow_chain(validator: &Validator, heights: u64, start_nonce: u64) {
    for h in 1..=heights {
        let (parent, parent_height) = validator.head().expect("head exists");
        let base = validator.pipeline().state_of(&parent).expect("head state");
        let pool = TxPool::new();
        for i in 1..=6u64 {
            pool.add(Transaction::transfer(
                Address::from_index(i),
                Address::from_index(i + 100),
                U256::from(7u64),
                start_nonce + h - 1,
                i,
            ));
        }
        let proposer = OccWsiProposer::new(OccWsiConfig {
            threads: 2,
            env: BlockEnv {
                number: parent_height + 1,
                ..BlockEnv::default()
            },
            ..OccWsiConfig::default()
        });
        let proposal = proposer.propose(&pool, Arc::clone(&base), parent, parent_height + 1);
        let outcome = validator.validate_and_commit(proposal.block);
        assert!(outcome.is_valid(), "{:?}", outcome.result);
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("blockpilot-restart-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale dir");
    }
    let world = genesis_world();

    println!("store directory: {}", dir.display());
    println!("\n--- first life -------------------------------------------------");
    let (head, height, root) = {
        let validator = Validator::with_store(config(), world.clone(), Store::open(&dir).unwrap())
            .expect("fresh store-backed validator");
        grow_chain(&validator, 4, 0);
        let (head, height) = validator.head().unwrap();
        let root = validator.head_state_root().unwrap();
        println!("grew chain to height {height}");
        println!("head        : {head:?}");
        println!("state root  : {root:?}");
        validator
            .with_store_ref(|s| {
                println!(
                    "on disk     : {} blocks, {} trie nodes, {} retained roots (window {})",
                    s.block_count(),
                    s.node_count(),
                    s.roots().len(),
                    ROOT_RETENTION
                );
            })
            .unwrap();
        (head, height, root)
        // validator dropped here: nothing is flushed on drop — everything
        // that matters was made durable by each commit's manifest swap.
    };

    println!("\n--- power cut, process gone, memory lost ----------------------");

    println!("\n--- second life ------------------------------------------------");
    let recovered = Validator::with_store(config(), world, Store::open(&dir).unwrap())
        .expect("cold-start recovery");
    let (rhead, rheight) = recovered.head().unwrap();
    println!("recovered head  : {rhead:?} at height {rheight}");
    assert_eq!((rhead, rheight), (head, height), "exact durable head");
    assert_eq!(recovered.head_state_root(), Some(root));
    recovered
        .with_store_ref(|s| {
            let trie = s.open_trie(root).expect("head state resolvable from disk");
            assert_eq!(trie.root_hash(), root);
        })
        .unwrap();
    println!("head state root resolves from the on-disk trie store");

    grow_chain(&recovered, 2, 4);
    let (_, final_height) = recovered.head().unwrap();
    println!("chain extended to height {final_height} after recovery");

    std::fs::remove_dir_all(&dir).ok();
    println!("\nCold-start replay re-executed the stored canonical chain through");
    println!("the normal validation pipeline: the node resumed exactly at its");
    println!("last durable commit, with no torn blocks and no dangling roots.");
}
