//! # BlockPilot
//!
//! A proposer-validator parallel execution framework for account-model
//! blockchains, reproducing Zhang et al., *"BlockPilot: A Proposer-Validator
//! Parallel Execution Framework for Blockchain"* (ICPP 2023).
//!
//! This facade crate re-exports the public API of every subsystem. See the
//! README for a tour and `examples/` for runnable programs.

pub use blockpilot_core as core;
pub use bp_baseline as baseline;
pub use bp_block as block;
pub use bp_concurrent as concurrent;
pub use bp_crypto as crypto;
pub use bp_evm as evm;
pub use bp_net as net;
pub use bp_node as node;
pub use bp_sim as sim;
pub use bp_state as state;
pub use bp_store as store;
pub use bp_txpool as txpool;
pub use bp_types as types;
pub use bp_workload as workload;

pub use blockpilot_core::{
    block_stm::{BlockStmProposer, ProposerAlgo},
    occ_wsi::{CommitPath, OccWsiConfig, OccWsiProposer, ProposerStats},
    pipeline::{PipelineConfig, ValidatorPipeline},
    proposer::Proposer,
    scheduler::{ConflictGranularity, Schedule, Scheduler},
    validator::Validator,
};
