//! `blockpilot` — a small CLI over the library: run a chain simulation, a
//! network simulation, or inspect the workload's conflict statistics.
//!
//! ```text
//! blockpilot chain   [--blocks N] [--txs N] [--threads N] [--workers N]
//! blockpilot node    [--blocks N] [--validators N] [--depth N] [--lockstep]
//!                    [--deferred-root] [--store DIR] [--group-commit [N]]
//! blockpilot network [--nodes N] [--heights N] [--fork-every N]
//! blockpilot stats   [--blocks N]
//! ```
//!
//! `node` prints a JSON summary on shutdown with the run counters and every
//! stage's occupancy/stall/queue-depth stats.

use std::sync::Arc;
use std::time::Instant;

use blockpilot::core::{
    ConflictGranularity, OccWsiConfig, PipelineConfig, Proposer, Scheduler, Validator,
};
use blockpilot::net::{run_network, NetConfig};
use blockpilot::workload::{WorkloadConfig, WorkloadGen};

fn arg(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("chain") => chain(&args),
        Some("node") => node(&args),
        Some("network") => network(&args),
        Some("stats") => stats(&args),
        _ => {
            eprintln!("usage: blockpilot <chain|node|network|stats> [options]");
            eprintln!("  chain   [--blocks N] [--txs N] [--threads N] [--workers N]");
            eprintln!("  node    [--blocks N] [--validators N] [--depth N] [--lockstep]");
            eprintln!("          [--deferred-root] [--store DIR] [--group-commit [N]]");
            eprintln!("  network [--nodes N] [--heights N] [--fork-every N]");
            eprintln!("  stats   [--blocks N]");
            std::process::exit(2);
        }
    }
}

/// Propose-and-validate a chain end to end with the real threaded stack.
fn chain(args: &[String]) {
    let blocks = arg(args, "--blocks", 5);
    let txs = arg(args, "--txs", 50) as usize;
    let threads = arg(args, "--threads", 4) as usize;
    let workers = arg(args, "--workers", 4) as usize;

    let mut gen = WorkloadGen::new(WorkloadConfig {
        txs_per_block: txs,
        tx_jitter: txs / 5,
        accounts: 300,
        ..WorkloadConfig::default()
    });
    let genesis = gen.genesis_state();
    let validator = Validator::new(
        PipelineConfig {
            workers,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        },
        genesis.clone(),
    );
    let mut parent = validator.genesis_hash();
    let mut state = Arc::new(genesis);
    let t0 = Instant::now();
    let mut total = 0usize;
    for height in 1..=blocks {
        let proposer = Proposer::new(OccWsiConfig {
            threads,
            env: gen.block_env(height),
            ..OccWsiConfig::default()
        });
        proposer.submit_transactions(gen.next_block_txs());
        let proposal = proposer.propose_block(Arc::clone(&state), parent, height);
        let outcome = validator.validate_and_commit(proposal.block.clone());
        assert!(outcome.is_valid(), "height {height}: {:?}", outcome.result);
        println!(
            "height {height}: {:>3} txs, {} aborts, root {:?}",
            proposal.block.tx_count(),
            proposal.stats.aborts,
            proposal.block.header.state_root
        );
        total += proposal.block.tx_count();
        parent = proposal.block.hash();
        state = Arc::new(proposal.post_state);
    }
    let dt = t0.elapsed();
    println!(
        "\n{total} txs / {blocks} blocks in {dt:?} ({:.0} tx/s end-to-end)",
        total as f64 / dt.as_secs_f64()
    );
}

/// The streaming node service: proposer, codec and validators on bounded
/// channels, with the serial-replay equivalence gate.
fn node(args: &[String]) {
    use blockpilot::node::{run_node, NodeConfig, NodeMode};
    use blockpilot::store::GroupCommitConfig;
    let lock_step = args.iter().any(|a| a == "--lockstep");
    let deferred_root = args.iter().any(|a| a == "--deferred-root");
    let group_commit = args
        .iter()
        .any(|a| a == "--group-commit")
        .then(|| GroupCommitConfig {
            max_blocks: arg(args, "--group-commit", 8) as usize,
            ..GroupCommitConfig::default()
        });
    let store_dir = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if group_commit.is_some() && store_dir.is_none() {
        eprintln!("--group-commit requires --store DIR (nothing to fsync otherwise)");
        std::process::exit(2);
    }
    let report = run_node(NodeConfig {
        mode: if lock_step {
            NodeMode::LockStep
        } else {
            NodeMode::Pipelined
        },
        blocks: arg(args, "--blocks", 20),
        validators: arg(args, "--validators", 2) as usize,
        channel_depth: arg(args, "--depth", 2) as usize,
        pipeline: PipelineConfig {
            deferred_root,
            ..PipelineConfig::default()
        },
        store_dir,
        group_commit,
        workload: WorkloadConfig {
            accounts: 300,
            txs_per_block: 48,
            tx_jitter: 8,
            ..WorkloadConfig::default()
        },
        ..NodeConfig::default()
    });
    println!(
        "{}: {} blocks, {} txs in {:.2}s ({:.0} tx/s sustained)",
        report.mode.label(),
        report.committed_blocks,
        report.committed_txs,
        report.wall_micros as f64 / 1e6,
        report.committed_tx_per_sec
    );
    println!(
        "proposer occupancy {:.0}%, stall {:.0}%; codec occupancy {:.0}%",
        report.proposer.occupancy(report.wall_micros) * 100.0,
        report.proposer.stall_share(report.wall_micros) * 100.0,
        report.codec.occupancy(report.wall_micros) * 100.0
    );
    for (i, v) in report.validators.iter().enumerate() {
        println!(
            "validator {i}: {} blocks, occupancy {:.0}%",
            v.items,
            v.occupancy(report.wall_micros) * 100.0
        );
    }
    let eq = report.equivalence.as_ref().expect("gate runs by default");
    println!(
        "equivalence over {} blocks: {} (root {:?})",
        eq.blocks,
        if eq.ok { "ok" } else { "MISMATCH" },
        eq.node_root
    );
    println!("{}", node_summary_json(&report));
    assert!(report.healthy(), "unhealthy node run");
}

/// Machine-readable shutdown summary: one JSON object with the run counters
/// and every stage's [`StageStats`], so CI and scripts can gate on the same
/// numbers the human-readable lines show.
fn node_summary_json(report: &blockpilot::node::NodeReport) -> String {
    fn stage(name: &str, s: &blockpilot::node::StageStats, wall: u64) -> String {
        format!(
            "    {{\"stage\": \"{name}\", \"items\": {}, \"busy_micros\": {}, \
             \"wait_micros\": {}, \"stall_micros\": {}, \"injected_micros\": {}, \
             \"max_queue_depth\": {}, \"occupancy\": {:.4}, \"stall_share\": {:.4}}}",
            s.items,
            s.busy_micros,
            s.wait_micros,
            s.stall_micros,
            s.injected_micros,
            s.max_queue_depth,
            s.occupancy(wall),
            s.stall_share(wall),
        )
    }
    let wall = report.wall_micros;
    let mut stages = vec![
        stage("ingest", &report.ingest, wall),
        stage("proposer", &report.proposer, wall),
        stage("codec", &report.codec, wall),
    ];
    for (i, v) in report.validators.iter().enumerate() {
        stages.push(stage(&format!("validator-{i}"), v, wall));
    }
    let equivalence = match &report.equivalence {
        Some(eq) => format!(
            "{{\"blocks\": {}, \"ok\": {}, \"serial_root\": \"{:?}\", \"node_root\": \"{:?}\"}}",
            eq.blocks, eq.ok, eq.serial_root, eq.node_root
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"mode\": \"{}\", \"engine\": \"{:?}\",\n  \
         \"committed_blocks\": {}, \"committed_txs\": {}, \"wall_micros\": {},\n  \
         \"committed_tx_per_sec\": {:.1}, \"proposer_aborts\": {}, \
         \"validation_failures\": {},\n  \"final_root\": \"{:?}\", \"healthy\": {},\n  \
         \"equivalence\": {},\n  \"stages\": [\n{}\n  ]\n}}",
        report.mode.label(),
        report.engine,
        report.committed_blocks,
        report.committed_txs,
        wall,
        report.committed_tx_per_sec,
        report.proposer_aborts,
        report.validation_failures,
        report.final_root,
        report.healthy(),
        equivalence,
        stages.join(",\n"),
    )
}

/// Multi-node DiCE simulation.
fn network(args: &[String]) {
    let report = run_network(NetConfig {
        nodes: arg(args, "--nodes", 4) as usize,
        heights: arg(args, "--heights", 6),
        fork_every: arg(args, "--fork-every", 3),
        ..NetConfig::default()
    });
    println!(
        "heights {}, forks {}, uncles {}",
        report.heights, report.forks, report.uncles
    );
    println!(
        "converged: {} (final root {:?})",
        report.converged, report.final_root
    );
    println!(
        "{} canonical txs, {} out-of-order deliveries",
        report.total_txs, report.out_of_order_deliveries
    );
}

/// Workload conflict statistics (the Figure 8 x-axis).
fn stats(args: &[String]) {
    let blocks = arg(args, "--blocks", 20) as usize;
    let mut gen = WorkloadGen::new(WorkloadConfig::default());
    let genesis = gen.genesis_state();
    let scheduler = Scheduler::new(ConflictGranularity::Account);
    let mut state = genesis;
    let mut ratios = Vec::new();
    for height in 1..=blocks as u64 {
        let env = gen.block_env(height);
        let txs = gen.next_block_txs();
        let out = blockpilot::baseline::execute_block_serially(&state, &env, &txs)
            .expect("workload blocks replay");
        let schedule = scheduler.schedule(&out.profile, 16);
        println!(
            "block {height:>3}: {:>3} txs, {:>2} subgraphs, largest {:>4.1}%, makespan {:>5.1}% of serial",
            txs.len(),
            schedule.subgraphs.len(),
            100.0 * schedule.largest_subgraph_ratio(),
            100.0 * schedule.makespan_gas(&out.profile) as f64 / out.gas_used.max(1) as f64,
        );
        ratios.push(schedule.largest_subgraph_ratio());
        state = out.post_state;
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!(
        "\nmean largest-subgraph ratio: {:.1}% (paper: 27.5%)",
        100.0 * mean
    );
}
