//! Adversarial blocks: a Byzantine proposer tampers with the block after
//! honest execution; the validator pipeline must reject every variant
//! (§4.4: "validators will reject the block if they execute transactions
//! and receive an inconsistent result").

use std::sync::Arc;

use blockpilot::core::{
    ConflictGranularity, OccWsiConfig, OccWsiProposer, PipelineConfig, Proposal, ValidationError,
    ValidatorPipeline,
};
use blockpilot::txpool::TxPool;
use blockpilot::types::{AccessKey, BlockHash, H256, U256};
use blockpilot::workload::{WorkloadConfig, WorkloadGen};

fn honest_proposal() -> (Proposal, Arc<blockpilot::state::WorldState>, BlockHash) {
    let mut gen = WorkloadGen::new(WorkloadConfig {
        accounts: 100,
        txs_per_block: 25,
        tx_jitter: 0,
        ..WorkloadConfig::default()
    });
    let base = Arc::new(gen.genesis_state());
    let env = gen.block_env(1);
    let txs = gen.next_block_txs();
    let pool = TxPool::new();
    for tx in txs {
        pool.add(tx);
    }
    let proposer = OccWsiProposer::new(OccWsiConfig {
        threads: 2,
        env,
        ..OccWsiConfig::default()
    });
    let parent = BlockHash::from_low_u64(1);
    let proposal = proposer.propose(&pool, Arc::clone(&base), parent, 1);
    (proposal, base, parent)
}

fn validate(
    block: blockpilot::block::Block,
    base: &Arc<blockpilot::state::WorldState>,
    parent: BlockHash,
) -> Result<(), ValidationError> {
    let pipeline = ValidatorPipeline::new(PipelineConfig {
        workers: 3,
        granularity: ConflictGranularity::Account,
        ..Default::default()
    });
    pipeline.register_state(parent, Arc::clone(base));
    let outcome = pipeline.validate_block(block);
    pipeline.shutdown();
    outcome.result
}

#[test]
fn honest_block_is_accepted() {
    let (proposal, base, parent) = honest_proposal();
    assert_eq!(validate(proposal.block, &base, parent), Ok(()));
}

#[test]
fn forged_state_root_rejected() {
    let (mut proposal, base, parent) = honest_proposal();
    proposal.block.header.state_root = H256::from_low_u64(0xDEAD);
    assert_eq!(
        validate(proposal.block, &base, parent),
        Err(ValidationError::StateRootMismatch)
    );
}

#[test]
fn inflated_gas_rejected() {
    let (mut proposal, base, parent) = honest_proposal();
    proposal.block.header.gas_used -= 1;
    assert!(matches!(
        validate(proposal.block, &base, parent),
        Err(ValidationError::GasMismatch { .. })
    ));
}

#[test]
fn reordered_transactions_rejected() {
    let (mut proposal, base, parent) = honest_proposal();
    proposal.block.transactions.swap(0, 1);
    assert_eq!(
        validate(proposal.block, &base, parent),
        Err(ValidationError::TxRootMismatch)
    );
}

#[test]
fn lying_profile_write_value_rejected() {
    let (mut proposal, base, parent) = honest_proposal();
    let entry = &mut proposal.block.profile.entries[3];
    let key = *entry.writes.keys().next().expect("tx has writes");
    entry.writes.insert(key, U256::from(0xBAD_u64));
    assert_eq!(
        validate(proposal.block, &base, parent),
        Err(ValidationError::ProfileMismatch { index: 3 })
    );
}

#[test]
fn profile_with_phantom_read_rejected() {
    let (mut proposal, base, parent) = honest_proposal();
    // Claim tx 0 read a key it never touched: the replayed footprint has
    // fewer reads than profiled.
    proposal.block.profile.entries[0].reads.insert(
        AccessKey::Balance(blockpilot::types::Address::from_index(999_999)),
        0,
    );
    assert_eq!(
        validate(proposal.block, &base, parent),
        Err(ValidationError::ProfileMismatch { index: 0 })
    );
}

#[test]
fn smuggled_invalid_transaction_rejected() {
    let (mut proposal, base, parent) = honest_proposal();
    // Append a transaction from an unfunded account, patching the tx root
    // so only execution can catch it.
    let bad = blockpilot::evm::Transaction::transfer(
        blockpilot::types::Address::from_index(777_777),
        blockpilot::types::Address::from_index(1),
        U256::from(1u64),
        0,
        1,
    );
    proposal.block.transactions.push(bad);
    proposal
        .block
        .profile
        .entries
        .push(blockpilot::block::TxProfile::default());
    proposal.block.header.tx_root = blockpilot::block::tx_root(&proposal.block.transactions);
    let result = validate(proposal.block, &base, parent);
    assert!(
        matches!(result, Err(ValidationError::TxRejected { .. })),
        "{result:?}"
    );
}

#[test]
fn truncated_profile_rejected() {
    let (mut proposal, base, parent) = honest_proposal();
    proposal.block.profile.entries.pop();
    let result = validate(proposal.block, &base, parent);
    assert!(
        matches!(result, Err(ValidationError::ProfileMismatch { .. })),
        "{result:?}"
    );
}
