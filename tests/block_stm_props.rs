//! Property tests: the Block-STM proposer is serial-replay equivalent.
//!
//! The Block-STM engine executes the preset candidate order optimistically
//! over a multi-version store, suspends dependents on ESTIMATE markers and
//! commits behind a decrease-only validation watermark. Whatever it seals
//! must be indistinguishable from a serial node: every sealed block replays
//! serially — on the exact pre-state it was proposed on — to the same
//! receipts, state root and gas total, at any thread count from 1 to 16,
//! on Zipf-skewed mixes and on a single-hot-key workload.
//!
//! Because the pending pool releases one transaction per sender per block
//! (nonce gating), workloads with sender reuse drain across several
//! blocks; the properties quantify over the whole chain of sealed blocks.

use std::sync::Arc;

use blockpilot::baseline::execute_block_serially;
use blockpilot::core::{OccWsiConfig, Proposal, Proposer, ProposerAlgo};
use blockpilot::evm::{contracts, BlockEnv, Transaction};
use blockpilot::state::WorldState;
use blockpilot::types::{Address, BlockHash, U256};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Action {
    Transfer { from: u8, to: u8, amount: u16 },
    Counter { from: u8 },
    Token { from: u8, to: u8, amount: u16 },
}

/// Zipf-flavoured sender index: half the draws collapse onto accounts 0–2,
/// the rest spread over all ten.
fn arb_sender() -> impl Strategy<Value = u8> {
    prop_oneof![0u8..3, 0u8..10]
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (arb_sender(), 0u8..10, 1u16..400)
                .prop_map(|(from, to, amount)| { Action::Transfer { from, to, amount } }),
            arb_sender().prop_map(|from| Action::Counter { from }),
            (arb_sender(), 0u8..10, 1u16..400).prop_map(|(from, to, amount)| Action::Token {
                from,
                to,
                amount
            }),
        ],
        1..30,
    )
}

/// Single-hot-key workload: every transaction bumps the same counter slot.
fn arb_hot_key_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        arb_sender().prop_map(|from| Action::Counter { from }),
        1..24,
    )
}

fn addr(i: u8) -> Address {
    Address::from_index(100 + i as u64)
}

fn world() -> WorldState {
    let mut w = WorldState::new();
    let counter = Address::from_index(500);
    let token = Address::from_index(501);
    w.set_code(counter, contracts::counter());
    w.set_code(token, contracts::token());
    for i in 0..10u8 {
        w.set_balance(addr(i), U256::from(1_000_000_000u64));
        w.set_storage(
            token,
            contracts::token_balance_slot(&addr(i)),
            U256::from(1_000_000u64),
        );
    }
    w
}

fn build_txs(actions: &[Action]) -> Vec<Transaction> {
    let counter = Address::from_index(500);
    let token = Address::from_index(501);
    let mut nonces = [0u64; 10];
    actions
        .iter()
        .enumerate()
        .map(|(i, action)| {
            let (from, to, gas_limit, data, value) = match action {
                Action::Transfer { from, to, amount } => (
                    *from,
                    addr(*to),
                    21_000,
                    Vec::new(),
                    U256::from(*amount as u64),
                ),
                Action::Counter { from } => (*from, counter, 200_000, Vec::new(), U256::ZERO),
                Action::Token { from, to, amount } => (
                    *from,
                    token,
                    300_000,
                    contracts::token_transfer_calldata(&addr(*to), U256::from(*amount as u64)),
                    U256::ZERO,
                ),
            };
            let nonce = nonces[from as usize];
            nonces[from as usize] += 1;
            Transaction {
                sender: addr(from),
                to: Some(to),
                value,
                nonce,
                gas_limit,
                gas_price: 1 + (i as u64 % 7),
                data,
            }
        })
        .collect()
}

/// Drains `txs` through a proposer of the given engine, checking each
/// sealed block against the serial oracle on its own pre-state. Returns
/// the sealed proposals in chain order.
fn propose_chain(
    base: &Arc<WorldState>,
    txs: &[Transaction],
    threads: usize,
    algo: ProposerAlgo,
) -> Vec<Proposal> {
    let proposer = Proposer::new(OccWsiConfig {
        threads,
        algo,
        ..OccWsiConfig::default()
    });
    proposer.submit_transactions(txs.iter().cloned());
    let mut state = Arc::new(base.snapshot());
    let mut chain = Vec::new();
    let mut height = 1u64;
    while !proposer.pool().is_empty() {
        let proposal = proposer.propose_block(Arc::clone(&state), BlockHash::ZERO, height);
        assert!(
            proposal.block.tx_count() > 0,
            "pool stuck with {} pending",
            proposer.pool().len()
        );
        let replay =
            execute_block_serially(&state, &BlockEnv::default(), &proposal.block.transactions)
                .expect("sealed blocks replay");
        assert_eq!(replay.receipts, proposal.receipts, "receipts diverge");
        assert_eq!(
            replay.post_state.state_root(),
            proposal.block.header.state_root,
            "state root diverges"
        );
        assert_eq!(replay.gas_used, proposal.block.header.gas_used);
        state = Arc::new(proposal.post_state.snapshot());
        height += 1;
        chain.push(proposal);
    }
    chain
}

fn committed_hashes(chain: &[Proposal]) -> Vec<blockpilot::types::TxHash> {
    let mut hashes: Vec<_> = chain
        .iter()
        .flat_map(|p| p.block.transactions.iter().map(|tx| tx.hash()))
        .collect();
    hashes.sort();
    hashes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every block the Block-STM engine seals — across the whole drain —
    /// replays serially to the same receipts, root and gas, at any thread
    /// count.
    #[test]
    fn block_stm_is_serial_replay_equivalent(
        actions in arb_actions(),
        threads in 1usize..=16,
    ) {
        let base = Arc::new(world());
        let txs = build_txs(&actions);
        let chain = propose_chain(&base, &txs, threads, ProposerAlgo::BlockStm);
        let committed: usize = chain.iter().map(|p| p.block.tx_count()).sum();
        prop_assert_eq!(committed, txs.len(), "every candidate must land");
        for proposal in &chain {
            // Abort accounting must reconcile within each block.
            prop_assert_eq!(
                proposal.stats.aborts,
                proposal.stats.first_aborts + proposal.stats.retry_aborts
            );
        }
    }

    /// The single-hot-key regime — the ESTIMATE-chain worst case — stays
    /// serial-replay equivalent at every thread count.
    #[test]
    fn block_stm_survives_a_hot_key(
        actions in arb_hot_key_actions(),
        threads in 1usize..=16,
    ) {
        let base = Arc::new(world());
        let txs = build_txs(&actions);
        let chain = propose_chain(&base, &txs, threads, ProposerAlgo::BlockStm);
        let committed: usize = chain.iter().map(|p| p.block.tx_count()).sum();
        prop_assert_eq!(committed, txs.len());
    }

    /// Both engines commit the same transaction *set* for the same pool
    /// (each is separately serial-replay equivalent; orders may differ, so
    /// the sets — not the roots — are the invariant).
    #[test]
    fn engines_commit_the_same_transaction_set(
        actions in arb_actions(),
        threads in 1usize..=8,
    ) {
        let base = Arc::new(world());
        let txs = build_txs(&actions);
        let occ = propose_chain(&base, &txs, threads, ProposerAlgo::OccWsi);
        let stm = propose_chain(&base, &txs, threads, ProposerAlgo::BlockStm);
        prop_assert_eq!(committed_hashes(&occ), committed_hashes(&stm));
    }
}
