//! Stress: ESTIMATE-wait chains through the Block-STM machinery.
//!
//! Two layers:
//!
//! * an end-to-end run of the real engine over a 96-deep dependency chain
//!   (counter bumps from distinct senders — transaction *i* reads the slot
//!   transaction *i−1* writes) at 2–16 real threads, gated on bit-identical
//!   serial replay. On a multi-core host this races the watermark hard; on
//!   the single-core evaluation container the OS may serialize the workers,
//!   so conflict counters are reconciled, not required to be non-zero;
//! * a deterministic, single-threaded drive of the public `MvMemory` +
//!   `StmScheduler` APIs that *forces* the full abort → ESTIMATE → suspend
//!   → resume → revalidate chain, so every link of the machinery is
//!   exercised on any host.

use std::sync::Arc;

use blockpilot::baseline::execute_block_serially;
use blockpilot::concurrent::{StmScheduler, StmTask};
use blockpilot::core::{OccWsiConfig, Proposer, ProposerAlgo};
use blockpilot::evm::{contracts, BlockEnv, Transaction};
use blockpilot::state::{MvMemory, MvRead, ReadValidation, WorldState};
use blockpilot::types::{AccessKey, Address, BlockHash, WriteSet, H256, U256};

const SENDERS: u64 = 96;

fn chain_world() -> (Arc<WorldState>, Vec<Transaction>) {
    let counter = Address::from_index(500);
    let mut w = WorldState::new();
    w.set_code(counter, contracts::counter());
    let mut txs = Vec::new();
    for i in 1..=SENDERS {
        let sender = Address::from_index(i);
        w.set_balance(sender, U256::from(1_000_000_000u64));
        txs.push(Transaction {
            sender,
            to: Some(counter),
            value: U256::ZERO,
            nonce: 0,
            gas_limit: 200_000,
            // Equal prices keep the preset order index-stable regardless of
            // pool tie-breaking; distinct senders keep it one block.
            gas_price: 1,
            data: vec![],
        });
    }
    (Arc::new(w), txs)
}

#[test]
fn estimate_chains_stay_serial_replay_equivalent() {
    let (base, txs) = chain_world();
    for threads in [2usize, 4, 8, 16] {
        let proposer = Proposer::new(OccWsiConfig {
            threads,
            algo: ProposerAlgo::BlockStm,
            ..OccWsiConfig::default()
        });
        proposer.submit_transactions(txs.iter().cloned());
        let proposal = proposer.propose_block(Arc::clone(&base), BlockHash::ZERO, 1);
        assert_eq!(
            proposal.block.tx_count(),
            txs.len(),
            "distinct senders fit one block"
        );
        assert!(proposer.pool().is_empty());

        let replay =
            execute_block_serially(&base, &BlockEnv::default(), &proposal.block.transactions)
                .expect("sealed chain replays");
        assert_eq!(replay.receipts, proposal.receipts, "{threads} threads");
        assert_eq!(
            replay.post_state.state_root(),
            proposal.block.header.state_root
        );

        // Abort accounting must reconcile however the race went.
        let s = &proposal.stats;
        assert_eq!(s.aborts, s.first_aborts + s.retry_aborts);
        assert!(s.executions >= s.committed);

        // Final counter value proves all bumps landed exactly once.
        assert_eq!(
            proposal
                .post_state
                .storage(&Address::from_index(500), &H256::from_low_u64(0)),
            U256::from(SENDERS)
        );
    }
}

/// Forces the abort → ESTIMATE → suspend → resume chain deterministically:
/// tx1 executes against stale state and soft-finalizes, tx0's writes land
/// afterwards and reopen the validation watermark, tx1's re-validation
/// fails, its writes become ESTIMATE markers, tx2 observes the marker and
/// suspends on the scheduler, and tx1's re-execution resumes it.
#[test]
fn forced_estimate_chain_exercises_every_link() {
    let key = AccessKey::Storage(Address::from_index(500), H256::from_low_u64(0));
    let base = Arc::new(WorldState::new());
    let mv = MvMemory::new(Arc::clone(&base), 3, 1);
    let sched = StmScheduler::new(3);

    // Claim the three first executions (one virtual worker each). The
    // wasted validation claims inside next_task push the validation
    // watermark forward, exactly as in a real racing run.
    for expect in 0..3usize {
        match sched.next_task() {
            StmTask::Execute { tx, incarnation } => {
                assert_eq!((tx, incarnation), (expect, 0));
            }
            other => panic!("expected Execute {{{expect}}}, got {other:?}"),
        }
    }

    // tx1 runs first: reads the base value, writes its stale result. The
    // watermark already passed it, so the worker gets the validation back.
    let origin1 = match mv.read(&key, 1) {
        MvRead::Value { value, origin } => {
            assert_eq!(value, U256::ZERO, "base state");
            origin
        }
        MvRead::Estimate { .. } => panic!("no ESTIMATE yet"),
    };
    let mut writes1 = WriteSet::default();
    writes1.insert(key, U256::ONE);
    mv.record(1, 0, vec![(key, origin1)], &writes1, std::iter::empty());
    let v1 = sched.finish_execution(1, 0, false);
    assert_eq!(
        v1,
        Some(StmTask::Validate {
            tx: 1,
            incarnation: 0
        })
    );
    // Validated now, it would pass — the stale read is undetectable until
    // tx0 lands. Hold the task and let tx0 finish first.

    // tx0 lands with a grown write set: the suffix must revalidate.
    let mut writes0 = WriteSet::default();
    writes0.insert(key, U256::ONE);
    mv.record(0, 0, Vec::new(), &writes0, std::iter::empty());
    assert!(sched.finish_execution(0, 0, true).is_none());

    // Now tx1's held validation fails; its writes turn into ESTIMATEs.
    assert_eq!(mv.validate_reads(1), ReadValidation::Invalid);
    assert!(sched.try_validation_abort(1, 0));
    mv.convert_to_estimates(1);

    // tx2 (claim still open) reads the key and hits the marker — the
    // wait-on-ESTIMATE path — and suspends until tx1 re-executes.
    match mv.read(&key, 2) {
        MvRead::Estimate { writer, fallback } => {
            assert_eq!(writer, 1);
            assert_eq!(fallback, U256::ONE, "marker falls back to the stale value");
        }
        MvRead::Value { .. } => panic!("tx2 must see the ESTIMATE marker"),
    }
    assert!(
        sched.add_dependency(2, 1),
        "tx1 is aborting: dependency holds"
    );

    // Completing the abort hands the owner its own re-execution.
    let retry = sched.finish_validation(1, true);
    assert_eq!(
        retry,
        Some(StmTask::Execute {
            tx: 1,
            incarnation: 1
        })
    );
    let origin1 = match mv.read(&key, 1) {
        MvRead::Value { value, origin } => {
            assert_eq!(value, U256::ONE, "tx0's committed value");
            origin
        }
        MvRead::Estimate { .. } => panic!("tx0 is final"),
    };
    let mut writes1b = WriteSet::default();
    writes1b.insert(key, U256::from(2u64));
    mv.record(1, 1, vec![(key, origin1)], &writes1b, std::iter::empty());
    // incarnation > 0 forces suffix revalidation and resumes tx2.
    assert!(sched.finish_execution(1, 1, true).is_none());

    // Drain to convergence: tx2's resumed execution must come back, and
    // every final validation must pass.
    let mut resumed = false;
    loop {
        match sched.next_task() {
            StmTask::Execute { tx: 2, incarnation } => {
                resumed = true;
                let origin2 = match mv.read(&key, 2) {
                    MvRead::Value { value, origin } => {
                        assert_eq!(value, U256::from(2u64));
                        origin
                    }
                    MvRead::Estimate { .. } => panic!("tx1 re-executed: no marker"),
                };
                mv.record(
                    2,
                    incarnation,
                    vec![(key, origin2)],
                    &WriteSet::default(),
                    std::iter::empty(),
                );
                assert!(sched.finish_execution(2, incarnation, false).is_none());
            }
            StmTask::Execute { tx, incarnation } => {
                panic!("unexpected re-execution of tx {tx} incarnation {incarnation}");
            }
            StmTask::Validate { tx, .. } => {
                assert_eq!(
                    mv.validate_reads(tx as u32),
                    ReadValidation::Valid,
                    "tx {tx}"
                );
                assert!(sched.finish_validation(tx, false).is_none());
            }
            StmTask::Done => break,
        }
    }
    assert!(resumed, "tx2 must be resumed after its blocker re-executes");
    assert!(sched.is_done());

    // The materialized prefix carries the final chain: counter == 2.
    let world = mv.materialize(3);
    assert_eq!(
        world.storage(&Address::from_index(500), &H256::from_low_u64(0)),
        U256::from(2u64)
    );
}
