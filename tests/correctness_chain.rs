//! End-to-end §5.2 correctness: a seeded chain proposed by OCC-WSI, checked
//! against the serial oracle and the validator pipeline at every height —
//! MPT roots must agree everywhere.

use std::sync::Arc;

use blockpilot::baseline::execute_block_serially;
use blockpilot::core::{ConflictGranularity, OccWsiConfig, PipelineConfig, Proposer, Validator};
use blockpilot::workload::{WorkloadConfig, WorkloadGen};

#[test]
fn proposer_serial_and_pipeline_roots_agree_along_a_chain() {
    let blocks = 4u64;
    let mut gen = WorkloadGen::new(WorkloadConfig {
        txs_per_block: 40,
        tx_jitter: 0,
        accounts: 150,
        ..WorkloadConfig::default()
    });
    let genesis = gen.genesis_state();
    let validator = Validator::new(
        PipelineConfig {
            workers: 3,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        },
        genesis.clone(),
    );
    let mut parent = validator.genesis_hash();
    let mut state = Arc::new(genesis);

    for height in 1..=blocks {
        let env = gen.block_env(height);
        let proposer = Proposer::new(OccWsiConfig {
            threads: 3,
            env,
            ..OccWsiConfig::default()
        });
        proposer.submit_transactions(gen.next_block_txs());
        let proposal = proposer.propose_block(Arc::clone(&state), parent, height);
        assert!(proposal.block.tx_count() > 0);

        // Serial oracle agrees with the proposer's sealed root.
        let serial = execute_block_serially(&state, &env, &proposal.block.transactions)
            .expect("proposed blocks replay serially");
        assert_eq!(
            serial.post_state.state_root(),
            proposal.block.header.state_root,
            "height {height}: serial oracle disagrees with proposer"
        );
        assert_eq!(serial.gas_used, proposal.block.header.gas_used);

        // The pipeline validator accepts and lands on the same root.
        let outcome = validator.validate_and_commit(proposal.block.clone());
        assert!(outcome.is_valid(), "height {height}: {:?}", outcome.result);
        assert_eq!(
            outcome.post_state.as_ref().expect("valid").state_root(),
            proposal.block.header.state_root,
            "height {height}: pipeline disagrees with proposer"
        );

        parent = proposal.block.hash();
        state = Arc::new(proposal.post_state);
    }
    assert_eq!(validator.head().expect("head").1, blocks);
}
