//! Contract deployment through the full stack: a CREATE transaction is
//! packed by the OCC-WSI proposer, its code write travels in the block
//! profile, and the validator pipeline replays the deployment to the same
//! state root — then a second block calls the deployed contract.

use std::sync::Arc;

use blockpilot::core::{ConflictGranularity, OccWsiConfig, PipelineConfig, Proposer, Validator};
use blockpilot::evm::{asm::Asm, contracts, create_address, opcode::Op, Transaction};
use blockpilot::state::WorldState;
use blockpilot::types::{AccessKey, Address, H256, U256};

fn addr(i: u64) -> Address {
    Address::from_index(i)
}

/// Init code that deploys the counter contract.
fn counter_init() -> Vec<u8> {
    let runtime = contracts::counter();
    // Write the runtime code into memory byte by byte, then RETURN it.
    let mut asm = Asm::new();
    for (i, b) in runtime.iter().enumerate() {
        asm = asm.push_u64(*b as u64).push_u64(i as u64).op(Op::MStore8);
    }
    asm.push_u64(runtime.len() as u64)
        .push_u64(0)
        .op(Op::Return)
        .build()
}

#[test]
fn deployment_flows_through_proposer_and_validator() {
    let mut genesis = WorldState::new();
    for i in 1..=5 {
        genesis.set_balance(addr(i), U256::from(100_000_000u64));
    }
    let validator = Validator::new(
        PipelineConfig {
            workers: 2,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        },
        genesis.clone(),
    );

    // Block 1: deploy the counter (plus unrelated transfers to exercise
    // parallel lanes around the deployment).
    let proposer = Proposer::new(OccWsiConfig {
        threads: 2,
        ..OccWsiConfig::default()
    });
    proposer.submit_transaction(Transaction {
        sender: addr(1),
        to: None,
        value: U256::ZERO,
        nonce: 0,
        gas_limit: 2_000_000,
        gas_price: 10,
        data: counter_init(),
    });
    for i in 2..=4u64 {
        proposer.submit_transaction(Transaction::transfer(
            addr(i),
            addr(i + 10),
            U256::ONE,
            0,
            1,
        ));
    }
    let p1 = proposer.propose_block(Arc::new(genesis), validator.genesis_hash(), 1);
    assert_eq!(p1.block.tx_count(), 4);
    let deployed = create_address(&addr(1), 0);
    assert_eq!(*p1.post_state.code(&deployed), contracts::counter());
    // The profile carries the code write for conflict detection.
    let deploy_idx = p1
        .block
        .transactions
        .iter()
        .position(|t| t.to.is_none())
        .expect("deployment included");
    assert!(p1.block.profile.entries[deploy_idx]
        .writes
        .contains_key(&AccessKey::Code(deployed)));

    let o1 = validator.validate_and_commit(p1.block.clone());
    assert!(o1.is_valid(), "{:?}", o1.result);
    let s1 = o1.post_state.expect("valid");
    assert_eq!(*s1.code(&deployed), contracts::counter());

    // Block 2: call the freshly deployed contract.
    let proposer2 = Proposer::new(OccWsiConfig {
        threads: 2,
        ..OccWsiConfig::default()
    });
    proposer2.submit_transaction(Transaction {
        sender: addr(2),
        to: Some(deployed),
        value: U256::ZERO,
        nonce: 1,
        gas_limit: 200_000,
        gas_price: 1,
        data: vec![],
    });
    let p2 = proposer2.propose_block(Arc::clone(&s1), p1.block.hash(), 2);
    assert_eq!(p2.block.tx_count(), 1);
    assert_eq!(
        p2.post_state.storage(&deployed, &H256::from_low_u64(0)),
        U256::ONE,
        "the deployed counter must increment"
    );
    let o2 = validator.validate_and_commit(p2.block);
    assert!(o2.is_valid(), "{:?}", o2.result);
    assert_eq!(validator.head().expect("head").1, 2);
}
