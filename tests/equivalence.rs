//! Cross-executor equivalence: for seeded random workloads, every execution
//! strategy in the repository must land on the serial oracle's MPT root.
//!
//! This is the repository's strongest invariant: OCC-WSI proposals replay
//! serially to their own root; the Saraph-Herlihy OCC baseline equals
//! serial; lane-parallel validation equals serial.

use std::sync::Arc;

use blockpilot::baseline::{execute_block_serially, occ_two_phase};
use blockpilot::core::{
    ConflictGranularity, OccWsiConfig, OccWsiProposer, PipelineConfig, ValidatorPipeline,
};
use blockpilot::txpool::TxPool;
use blockpilot::types::BlockHash;
use blockpilot::workload::{TxMix, WorkloadConfig, WorkloadGen};

fn config_for_seed(seed: u64, mix: TxMix) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        accounts: 120,
        txs_per_block: 35,
        tx_jitter: 5,
        mix,
        ..WorkloadConfig::default()
    }
}

fn mixes() -> Vec<TxMix> {
    vec![
        TxMix {
            transfer: 1.0,
            token: 0.0,
            amm: 0.0,
            blind: 0.0,
            mint: 0.0,
        },
        TxMix {
            transfer: 0.3,
            token: 0.3,
            amm: 0.3,
            blind: 0.1,
            mint: 0.0,
        },
        TxMix {
            transfer: 0.0,
            token: 0.0,
            amm: 1.0,
            blind: 0.0,
            mint: 0.0,
        },
    ]
}

#[test]
fn occ_baseline_equals_serial_on_random_workloads() {
    for (i, mix) in mixes().into_iter().enumerate() {
        let gen_cfg = config_for_seed(42 + i as u64, mix);
        let mut gen = WorkloadGen::new(gen_cfg);
        let base = gen.genesis_state();
        let env = gen.block_env(1);
        let txs = gen.next_block_txs();
        let serial = execute_block_serially(&base, &env, &txs).expect("replayable");
        let occ = occ_two_phase(&base, &env, &txs).expect("replayable");
        assert_eq!(
            occ.post_state.state_root(),
            serial.post_state.state_root(),
            "mix {i}: OCC baseline diverged from serial"
        );
        assert_eq!(occ.gas_used, serial.gas_used);
    }
}

#[test]
fn occ_wsi_proposals_are_serializable_on_random_workloads() {
    for (i, mix) in mixes().into_iter().enumerate() {
        let gen_cfg = config_for_seed(77 + i as u64, mix);
        let mut gen = WorkloadGen::new(gen_cfg);
        let base = Arc::new(gen.genesis_state());
        let env = gen.block_env(1);
        let txs = gen.next_block_txs();
        let expected = txs.len();

        let pool = TxPool::new();
        for tx in &txs {
            pool.add(tx.clone());
        }
        let proposer = OccWsiProposer::new(OccWsiConfig {
            threads: 4,
            env,
            ..OccWsiConfig::default()
        });
        let proposal = proposer.propose(&pool, Arc::clone(&base), BlockHash::ZERO, 1);
        assert_eq!(proposal.block.tx_count(), expected, "mix {i}: txs lost");

        // Serializability witness: replaying the committed order serially
        // reproduces the proposer's root exactly.
        let replay = execute_block_serially(&base, &env, &proposal.block.transactions)
            .expect("committed order replays");
        assert_eq!(
            replay.post_state.state_root(),
            proposal.block.header.state_root,
            "mix {i}: OCC-WSI commit order is not serializable"
        );
    }
}

#[test]
fn pipeline_validation_equals_serial_on_random_workloads() {
    for (i, mix) in mixes().into_iter().enumerate() {
        let gen_cfg = config_for_seed(99 + i as u64, mix);
        let mut gen = WorkloadGen::new(gen_cfg);
        let base = Arc::new(gen.genesis_state());
        let env = gen.block_env(1);
        let txs = gen.next_block_txs();

        // Seal a block with the serial oracle, then have the pipeline
        // re-execute it in parallel lanes.
        let pool = TxPool::new();
        for tx in &txs {
            pool.add(tx.clone());
        }
        let proposer = OccWsiProposer::new(OccWsiConfig {
            threads: 2,
            env,
            ..OccWsiConfig::default()
        });
        let parent = BlockHash::from_low_u64(7);
        let proposal = proposer.propose(&pool, Arc::clone(&base), parent, 1);

        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers: 4,
            granularity: ConflictGranularity::Account,
            ..Default::default()
        });
        pipeline.register_state(parent, Arc::clone(&base));
        let outcome = pipeline.validate_block(proposal.block.clone());
        assert!(outcome.is_valid(), "mix {i}: {:?}", outcome.result);
        assert_eq!(
            outcome.post_state.expect("valid").state_root(),
            proposal.post_state.state_root(),
            "mix {i}: pipeline root diverged"
        );
        pipeline.shutdown();
    }
}

#[test]
fn slot_granularity_schedules_also_validate() {
    // The finer granularity must remain *safe*: replays still match.
    let mut gen = WorkloadGen::new(config_for_seed(
        123,
        TxMix {
            transfer: 0.5,
            token: 0.5,
            amm: 0.0,
            blind: 0.0,
            mint: 0.0,
        },
    ));
    let base = Arc::new(gen.genesis_state());
    let env = gen.block_env(1);
    let txs = gen.next_block_txs();
    let pool = TxPool::new();
    for tx in &txs {
        pool.add(tx.clone());
    }
    let proposer = OccWsiProposer::new(OccWsiConfig {
        threads: 2,
        env,
        ..OccWsiConfig::default()
    });
    let parent = BlockHash::from_low_u64(9);
    let proposal = proposer.propose(&pool, Arc::clone(&base), parent, 1);

    let pipeline = ValidatorPipeline::new(PipelineConfig {
        workers: 4,
        granularity: ConflictGranularity::Slot,
        ..Default::default()
    });
    pipeline.register_state(parent, Arc::clone(&base));
    let outcome = pipeline.validate_block(proposal.block.clone());
    assert!(outcome.is_valid(), "{:?}", outcome.result);
    pipeline.shutdown();
}
