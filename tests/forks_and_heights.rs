//! Fork handling and cross-height ordering through the public API: multiple
//! blocks per height validate concurrently; children wait for parents; the
//! chain store tracks uncles and reorgs.

use std::sync::Arc;

use blockpilot::core::{OccWsiConfig, PipelineConfig, Proposer, Validator};
use blockpilot::evm::{BlockEnv, Transaction};
use blockpilot::state::WorldState;
use blockpilot::types::{Address, U256};

fn funded(n: u64) -> WorldState {
    let mut w = WorldState::new();
    for i in 1..=n {
        w.set_balance(Address::from_index(i), U256::from(10_000_000u64));
    }
    w
}

fn proposer_with_transfers(senders: std::ops::Range<u64>, nonce: u64, seed: u64) -> Proposer {
    let p = Proposer::new(OccWsiConfig {
        threads: 2,
        env: BlockEnv {
            number: seed,
            ..BlockEnv::default()
        },
        ..OccWsiConfig::default()
    });
    for i in senders {
        p.submit_transaction(Transaction::transfer(
            Address::from_index(i),
            Address::from_index(i + 300),
            U256::from(9u64),
            nonce,
            i,
        ));
    }
    p
}

#[test]
fn competing_blocks_validate_and_one_becomes_canonical() {
    let genesis = funded(30);
    let validator = Validator::new(PipelineConfig::default(), genesis.clone());
    let base = Arc::new(genesis);

    let a = proposer_with_transfers(1..10, 0, 1)
        .propose_block(Arc::clone(&base), validator.genesis_hash(), 1)
        .block;
    let b = proposer_with_transfers(10..20, 0, 2)
        .propose_block(Arc::clone(&base), validator.genesis_hash(), 1)
        .block;
    assert_ne!(a.hash(), b.hash());

    let ha = validator.receive_block(a.clone());
    let hb = validator.receive_block(b);
    assert!(ha.wait().is_valid());
    assert!(hb.wait().is_valid());
    assert_eq!(validator.blocks_at(1), 2);

    assert!(validator.validate_and_commit(a).is_valid());
    assert_eq!(validator.head().expect("head").1, 1);
    assert_eq!(validator.uncles_at(1), 1);
}

#[test]
fn chain_extends_across_heights_with_out_of_order_arrival() {
    let genesis = funded(10);
    let validator = Validator::new(PipelineConfig::default(), genesis.clone());
    let base = Arc::new(genesis);

    let p1 = proposer_with_transfers(1..6, 0, 1).propose_block(
        Arc::clone(&base),
        validator.genesis_hash(),
        1,
    );
    let s1 = Arc::new(p1.post_state.clone());
    let p2 = proposer_with_transfers(1..6, 1, 1).propose_block(s1, p1.block.hash(), 2);

    // Child arrives before parent: it must park, then validate once the
    // parent clears block validation.
    let h2 = validator.receive_block(p2.block.clone());
    let h1 = validator.receive_block(p1.block.clone());
    assert!(h1.wait().is_valid());
    let o2 = h2.wait();
    assert!(o2.is_valid(), "{:?}", o2.result);
    assert_eq!(
        o2.post_state.expect("valid").state_root(),
        p2.block.header.state_root
    );
}

#[test]
fn descendant_of_tampered_block_is_rejected() {
    let genesis = funded(10);
    let validator = Validator::new(PipelineConfig::default(), genesis.clone());
    let base = Arc::new(genesis);

    let mut p1 = proposer_with_transfers(1..6, 0, 1).propose_block(
        Arc::clone(&base),
        validator.genesis_hash(),
        1,
    );
    p1.block.header.state_root = blockpilot::types::H256::from_low_u64(0xBAD);
    let s1 = Arc::new(p1.post_state.clone());
    let p2 = proposer_with_transfers(1..6, 1, 1).propose_block(s1, p1.block.hash(), 2);

    let h2 = validator.receive_block(p2.block);
    let h1 = validator.receive_block(p1.block);
    assert!(!h1.wait().is_valid());
    assert_eq!(
        h2.wait().result,
        Err(blockpilot::core::ValidationError::ParentInvalid)
    );
}

#[test]
fn empty_blocks_flow_through_the_whole_stack() {
    let genesis = funded(3);
    let validator = Validator::new(PipelineConfig::default(), genesis.clone());
    let base = Arc::new(genesis);
    let p = Proposer::new(OccWsiConfig::default());
    let proposal = p.propose_block(base, validator.genesis_hash(), 1);
    assert_eq!(proposal.block.tx_count(), 0);
    let outcome = validator.validate_and_commit(proposal.block);
    assert!(outcome.is_valid());
    assert_eq!(validator.head().expect("head").1, 1);
}
