//! Real-thread multi-block pipeline: several same-height blocks in flight
//! at once over one shared worker pool (the paper's §5.6 setup on actual
//! threads rather than virtual time), plus forked chains across heights.

use std::sync::Arc;

use blockpilot::core::{
    ConflictGranularity, OccWsiConfig, OccWsiProposer, PipelineConfig, Proposal, ValidatorPipeline,
};
use blockpilot::txpool::TxPool;
use blockpilot::types::BlockHash;
use blockpilot::workload::{WorkloadConfig, WorkloadGen};

fn propose(
    gen: &mut WorkloadGen,
    base: &Arc<blockpilot::state::WorldState>,
    parent: BlockHash,
    height: u64,
    seed: u64,
) -> Proposal {
    let txs = gen.next_block_txs();
    let pool = TxPool::new();
    for tx in txs {
        pool.add(tx);
    }
    let engine = OccWsiProposer::new(OccWsiConfig {
        threads: 2,
        env: blockpilot::evm::BlockEnv {
            number: seed,
            ..gen.block_env(height)
        },
        ..OccWsiConfig::default()
    });
    engine.propose(&pool, Arc::clone(base), parent, height)
}

fn workload() -> WorkloadGen {
    WorkloadGen::new(WorkloadConfig {
        accounts: 120,
        tokens: 3,
        amm_pairs: 1,
        txs_per_block: 25,
        tx_jitter: 0,
        ..WorkloadConfig::default()
    })
}

#[test]
fn four_same_height_blocks_validate_concurrently() {
    let mut gen = workload();
    let base = Arc::new(gen.genesis_state());
    let parent = BlockHash::from_low_u64(1);
    let pipeline = ValidatorPipeline::new(PipelineConfig {
        workers: 4,
        granularity: ConflictGranularity::Account,
        ..Default::default()
    });
    pipeline.register_state(parent, Arc::clone(&base));

    // Four distinct proposals at height 1 (different tx subsets because the
    // generator advances; different proposer seeds).
    let proposals: Vec<Proposal> = (0..4)
        .map(|i| propose(&mut gen, &base, parent, 1, 100 + i))
        .collect();
    let hashes: std::collections::HashSet<BlockHash> =
        proposals.iter().map(|p| p.block.hash()).collect();
    assert_eq!(hashes.len(), 4, "blocks must be distinct");

    // Submit all four before waiting on any: they share the worker pool.
    let handles: Vec<_> = proposals
        .iter()
        .map(|p| pipeline.submit(p.block.clone()))
        .collect();
    for (handle, proposal) in handles.into_iter().zip(&proposals) {
        let outcome = handle.wait();
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        assert_eq!(
            outcome.post_state.expect("valid").state_root(),
            proposal.post_state.state_root()
        );
    }
    pipeline.shutdown();
}

#[test]
fn forked_tree_validates_across_heights() {
    // Build a small block tree:
    //           g
    //         /   \
    //        a1    b1        (height 1)
    //        |     |
    //        a2    b2        (height 2, each on its own parent)
    // Submit leaves first, then roots; every block must validate.
    let mut gen = workload();
    let base = Arc::new(gen.genesis_state());
    let parent = BlockHash::from_low_u64(7);
    let pipeline = ValidatorPipeline::new(PipelineConfig {
        workers: 3,
        granularity: ConflictGranularity::Account,
        ..Default::default()
    });
    pipeline.register_state(parent, Arc::clone(&base));

    let a1 = propose(&mut gen, &base, parent, 1, 1);
    let b1 = propose(&mut gen, &base, parent, 1, 2);
    let a1_state = Arc::new(a1.post_state.clone());
    let b1_state = Arc::new(b1.post_state.clone());
    let a2 = propose(&mut gen, &a1_state, a1.block.hash(), 2, 1);
    let b2 = propose(&mut gen, &b1_state, b1.block.hash(), 2, 2);

    let h_a2 = pipeline.submit(a2.block.clone());
    let h_b2 = pipeline.submit(b2.block.clone());
    let h_a1 = pipeline.submit(a1.block.clone());
    let h_b1 = pipeline.submit(b1.block.clone());

    for (name, handle) in [("a1", h_a1), ("b1", h_b1), ("a2", h_a2), ("b2", h_b2)] {
        let outcome = handle.wait();
        assert!(outcome.is_valid(), "{name}: {:?}", outcome.result);
    }
    pipeline.shutdown();
}

#[test]
fn pipeline_throughput_scales_with_submission_batching() {
    // Not a wall-clock assertion (single-core runner) — this checks that a
    // burst of B blocks completes with every verdict delivered exactly once
    // and no cross-block state bleed.
    let mut gen = workload();
    let base = Arc::new(gen.genesis_state());
    let parent = BlockHash::from_low_u64(3);
    let pipeline = ValidatorPipeline::new(PipelineConfig {
        workers: 4,
        granularity: ConflictGranularity::Account,
        ..Default::default()
    });
    pipeline.register_state(parent, Arc::clone(&base));

    let proposals: Vec<Proposal> = (0..6)
        .map(|i| propose(&mut gen, &base, parent, 1, 500 + i))
        .collect();
    let handles: Vec<_> = proposals
        .iter()
        .map(|p| pipeline.submit(p.block.clone()))
        .collect();
    let mut roots = Vec::new();
    for handle in handles {
        let outcome = handle.wait();
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        roots.push(outcome.post_state.expect("valid").state_root());
    }
    // Each block produced its own post-state, matching its proposer.
    for (root, proposal) in roots.iter().zip(&proposals) {
        assert_eq!(*root, proposal.post_state.state_root());
    }
    pipeline.shutdown();
}
