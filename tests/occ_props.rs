//! Property test: OCC-WSI serializability over randomized transaction sets.
//!
//! For arbitrary mixes of transfers, counter bumps and token moves with
//! arbitrary senders/recipients, the multi-threaded proposer must commit a
//! block whose serial replay reproduces its sealed state root, lose no
//! transaction, and keep per-sender nonces dense.

use std::sync::Arc;

use blockpilot::baseline::execute_block_serially;
use blockpilot::core::{OccWsiConfig, OccWsiProposer};
use blockpilot::evm::{contracts, BlockEnv, Transaction};
use blockpilot::state::WorldState;
use blockpilot::txpool::TxPool;
use blockpilot::types::{Address, BlockHash, U256};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Action {
    Transfer { from: u8, to: u8, amount: u16 },
    Counter { from: u8 },
    Token { from: u8, to: u8, amount: u16 },
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..12, 0u8..12, 1u16..500).prop_map(|(from, to, amount)| Action::Transfer {
                from,
                to,
                amount
            }),
            (0u8..12).prop_map(|from| Action::Counter { from }),
            (0u8..12, 0u8..12, 1u16..500).prop_map(|(from, to, amount)| Action::Token {
                from,
                to,
                amount
            }),
        ],
        1..25,
    )
}

fn addr(i: u8) -> Address {
    Address::from_index(100 + i as u64)
}

fn world() -> WorldState {
    let mut w = WorldState::new();
    let counter = Address::from_index(500);
    let token = Address::from_index(501);
    w.set_code(counter, contracts::counter());
    w.set_code(token, contracts::token());
    for i in 0..12u8 {
        w.set_balance(addr(i), U256::from(1_000_000_000u64));
        w.set_storage(
            token,
            contracts::token_balance_slot(&addr(i)),
            U256::from(1_000_000u64),
        );
    }
    w
}

fn build_txs(actions: &[Action]) -> Vec<Transaction> {
    let counter = Address::from_index(500);
    let token = Address::from_index(501);
    let mut nonces = [0u64; 12];
    actions
        .iter()
        .enumerate()
        .map(|(i, action)| {
            let (from, to, gas_limit, data, value) = match action {
                Action::Transfer { from, to, amount } => (
                    *from,
                    addr(*to),
                    21_000,
                    Vec::new(),
                    U256::from(*amount as u64),
                ),
                Action::Counter { from } => (*from, counter, 200_000, Vec::new(), U256::ZERO),
                Action::Token { from, to, amount } => (
                    *from,
                    token,
                    300_000,
                    contracts::token_transfer_calldata(&addr(*to), U256::from(*amount as u64)),
                    U256::ZERO,
                ),
            };
            let nonce = nonces[from as usize];
            nonces[from as usize] += 1;
            Transaction {
                sender: addr(from),
                to: Some(to),
                value,
                nonce,
                gas_limit,
                gas_price: 1 + (i as u64 % 7),
                data,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn occ_wsi_is_serializable(actions in arb_actions(), threads in 1usize..5) {
        let base = Arc::new(world());
        let txs = build_txs(&actions);
        let expected = txs.len();
        let pool = TxPool::new();
        for tx in &txs {
            pool.add(tx.clone());
        }
        let proposer = OccWsiProposer::new(OccWsiConfig {
            threads,
            ..OccWsiConfig::default()
        });
        let proposal = proposer.propose(&pool, Arc::clone(&base), BlockHash::ZERO, 1);

        // Nothing lost, nothing invented.
        prop_assert_eq!(proposal.block.tx_count(), expected);
        prop_assert!(pool.is_empty());

        // The committed order is a valid serial schedule with the same root.
        let replay = execute_block_serially(
            &base,
            &BlockEnv::default(),
            &proposal.block.transactions,
        )
        .expect("commit order must replay");
        prop_assert_eq!(
            replay.post_state.state_root(),
            proposal.block.header.state_root
        );
        prop_assert_eq!(replay.gas_used, proposal.block.header.gas_used);

        // Per-sender nonce order is preserved inside the block.
        let mut last: std::collections::HashMap<Address, u64> = Default::default();
        for tx in &proposal.block.transactions {
            if let Some(prev) = last.get(&tx.sender) {
                prop_assert!(tx.nonce > *prev, "nonce inversion for {:?}", tx.sender);
            }
            last.insert(tx.sender, tx.nonce);
        }
    }
}
