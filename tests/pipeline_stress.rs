//! 16-worker pipeline stress: the per-transaction result path is built on
//! lock-free single-writer slots, so a pool twice as wide as the block's
//! parallelism hammering several in-flight blocks must still deliver
//! exactly the serial outcome for every block — and a tampered block's
//! early abort must cut its execution short without poisoning the valid
//! siblings sharing the pool.

use std::sync::Arc;

use blockpilot::core::{
    ConflictGranularity, DispatchPolicy, OccWsiConfig, OccWsiProposer, PipelineConfig, Proposal,
    ValidationError, ValidatorPipeline,
};
use blockpilot::txpool::TxPool;
use blockpilot::types::BlockHash;
use blockpilot::workload::{WorkloadConfig, WorkloadGen};

fn propose(
    gen: &mut WorkloadGen,
    base: &Arc<blockpilot::state::WorldState>,
    parent: BlockHash,
    height: u64,
    seed: u64,
) -> Proposal {
    let txs = gen.next_block_txs();
    let pool = TxPool::new();
    for tx in txs {
        pool.add(tx);
    }
    let engine = OccWsiProposer::new(OccWsiConfig {
        threads: 2,
        env: blockpilot::evm::BlockEnv {
            number: seed,
            ..gen.block_env(height)
        },
        ..OccWsiConfig::default()
    });
    engine.propose(&pool, Arc::clone(base), parent, height)
}

fn workload() -> WorkloadGen {
    WorkloadGen::new(WorkloadConfig {
        accounts: 150,
        tokens: 3,
        amm_pairs: 1,
        txs_per_block: 30,
        tx_jitter: 0,
        ..WorkloadConfig::default()
    })
}

fn wide_pipeline(appliers: usize) -> ValidatorPipeline {
    ValidatorPipeline::new(PipelineConfig {
        workers: 16,
        granularity: ConflictGranularity::Account,
        dispatch: DispatchPolicy::Subgraph,
        appliers,
        deferred_root: false,
    })
}

#[test]
fn sixteen_workers_replay_bursts_of_sibling_blocks() {
    // Three rounds of four same-height siblings, all submitted before any
    // verdict is read: 16 workers race over every block's subgraph jobs and
    // every result goes through the lock-free slots. Each block must end on
    // its proposer's exact state root with all transactions executed.
    let mut gen = workload();
    let base = Arc::new(gen.genesis_state());
    let pipeline = wide_pipeline(2);
    for round in 0u64..3 {
        let parent = BlockHash::from_low_u64(round + 1);
        pipeline.register_state(parent, Arc::clone(&base));
        let proposals: Vec<Proposal> = (0..4)
            .map(|i| propose(&mut gen, &base, parent, 1, 1000 * (round + 1) + i))
            .collect();
        let handles: Vec<_> = proposals
            .iter()
            .map(|p| pipeline.submit(p.block.clone()))
            .collect();
        for (handle, proposal) in handles.into_iter().zip(&proposals) {
            let outcome = handle.wait();
            assert!(outcome.is_valid(), "{:?}", outcome.result);
            assert_eq!(outcome.executed_txs, proposal.block.transactions.len());
            assert!(!outcome.aborted_early);
            assert_eq!(
                outcome.post_state.expect("valid").state_root(),
                proposal.post_state.state_root()
            );
        }
    }
    pipeline.shutdown();
}

#[test]
fn sixteen_workers_abort_tampered_sibling_without_poisoning_the_rest() {
    // One sibling carries a lying profile entry; its replay must trip the
    // per-block cancellation (ProfileMismatch, aborted_early) while the
    // valid siblings sharing the same 16-worker pool validate untouched.
    let mut gen = workload();
    let base = Arc::new(gen.genesis_state());
    let parent = BlockHash::from_low_u64(9);
    let pipeline = wide_pipeline(2);
    pipeline.register_state(parent, Arc::clone(&base));

    let honest: Vec<Proposal> = (0..3)
        .map(|i| propose(&mut gen, &base, parent, 1, 2000 + i))
        .collect();
    let mut tampered = propose(&mut gen, &base, parent, 1, 2999).block;
    let victim = tampered.profile.len() / 2;
    let entry = &mut tampered.profile.entries[victim];
    let (key, value) = entry
        .writes
        .iter()
        .map(|(k, v)| (*k, *v))
        .next()
        .expect("transfer writes");
    entry
        .writes
        .insert(key, value + blockpilot::types::U256::ONE);

    let bad = pipeline.submit(tampered.clone());
    let handles: Vec<_> = honest
        .iter()
        .map(|p| pipeline.submit(p.block.clone()))
        .collect();

    let outcome = bad.wait();
    assert!(
        matches!(outcome.result, Err(ValidationError::ProfileMismatch { index }) if index == victim),
        "{:?}",
        outcome.result
    );
    assert!(outcome.aborted_early);
    assert!(outcome.executed_txs <= tampered.transactions.len());
    for (handle, proposal) in handles.into_iter().zip(&honest) {
        let outcome = handle.wait();
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        assert_eq!(
            outcome.post_state.expect("valid").state_root(),
            proposal.post_state.state_root()
        );
    }
    pipeline.shutdown();
}

#[test]
fn sixteen_workers_reject_tampered_tx_root_with_zero_execution() {
    // A reordered transaction list breaks the header's tx_root commitment:
    // the preparation-phase check must reject the block before any of the
    // 16 workers executes a single transaction.
    let mut gen = workload();
    let base = Arc::new(gen.genesis_state());
    let parent = BlockHash::from_low_u64(4);
    let pipeline = wide_pipeline(1);
    pipeline.register_state(parent, Arc::clone(&base));

    let mut block = propose(&mut gen, &base, parent, 1, 3000).block;
    block.transactions.swap(0, 1);

    let outcome = pipeline.validate_block(block);
    assert_eq!(outcome.result, Err(ValidationError::TxRootMismatch));
    assert_eq!(outcome.executed_txs, 0, "no transaction may execute");
    assert!(!outcome.aborted_early);
    pipeline.shutdown();
}

#[test]
fn single_applier_still_drains_sibling_burst_at_sixteen_workers() {
    // The applier pool degenerates to the old serialized stage at size 1;
    // correctness (exact outcomes, ordered drain of the slots) must not
    // depend on the pool width.
    let mut gen = workload();
    let base = Arc::new(gen.genesis_state());
    let parent = BlockHash::from_low_u64(6);
    let pipeline = wide_pipeline(1);
    pipeline.register_state(parent, Arc::clone(&base));

    let proposals: Vec<Proposal> = (0..5)
        .map(|i| propose(&mut gen, &base, parent, 1, 4000 + i))
        .collect();
    let handles: Vec<_> = proposals
        .iter()
        .map(|p| pipeline.submit(p.block.clone()))
        .collect();
    for (handle, proposal) in handles.into_iter().zip(&proposals) {
        let outcome = handle.wait();
        assert!(outcome.is_valid(), "{:?}", outcome.result);
        assert_eq!(outcome.executed_txs, proposal.block.transactions.len());
        assert_eq!(
            outcome.post_state.expect("valid").state_root(),
            proposal.post_state.state_root()
        );
    }
    pipeline.shutdown();
}
