//! Property tests for the validator scheduler over randomly generated
//! footprints: the lane invariants that make parallel replay safe.

use blockpilot::block::{BlockProfile, TxProfile};
use blockpilot::core::{AssignPolicy, ConflictGranularity, Scheduler};
use blockpilot::types::{AccessKey, Address, RwSet, H256, U256};
use proptest::prelude::*;

/// A compact footprint description: which abstract keys each tx reads and
/// writes, plus its gas.
#[derive(Clone, Debug)]
struct TxDesc {
    reads: Vec<u8>,
    writes: Vec<u8>,
    gas: u64,
}

fn key(id: u8) -> AccessKey {
    // Spread keys over both accounts and slots so both granularities are
    // exercised: even ids are balances, odd ids are storage slots grouped
    // four-per-contract.
    if id % 2 == 0 {
        AccessKey::Balance(Address::from_index(id as u64))
    } else {
        AccessKey::Storage(
            Address::from_index(1000 + (id / 8) as u64),
            H256::from_low_u64(id as u64),
        )
    }
}

fn profile(descs: &[TxDesc]) -> BlockProfile {
    let entries = descs
        .iter()
        .map(|d| {
            let mut rw = RwSet::new();
            for &r in &d.reads {
                rw.record_read(key(r), 0);
            }
            for &w in &d.writes {
                rw.record_write(key(w), U256::ONE);
            }
            TxProfile::from_rw(&rw, d.gas)
        })
        .collect();
    BlockProfile { entries }
}

fn arb_descs() -> impl Strategy<Value = Vec<TxDesc>> {
    prop::collection::vec(
        (
            prop::collection::vec(0u8..24, 0..4),
            prop::collection::vec(0u8..24, 0..3),
            1_000u64..200_000,
        )
            .prop_map(|(reads, writes, gas)| TxDesc { reads, writes, gas }),
        0..60,
    )
}

fn conflicts(a: &TxProfile, b: &TxProfile, granularity: ConflictGranularity) -> bool {
    match granularity {
        ConflictGranularity::Slot => a.rw().conflicts_with(&b.rw()),
        ConflictGranularity::Account => a.rw().conflicts_with_account_level(&b.rw()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lanes_partition_the_block(descs in arb_descs(), lanes in 1usize..9) {
        let p = profile(&descs);
        let s = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        let mut seen = vec![false; descs.len()];
        for lane in &s.lanes {
            for &i in lane {
                prop_assert!(!seen[i], "tx {i} scheduled twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b), "some tx unscheduled");
    }

    #[test]
    fn no_conflicts_cross_lanes(descs in arb_descs(), lanes in 1usize..9) {
        for granularity in [ConflictGranularity::Account, ConflictGranularity::Slot] {
            let p = profile(&descs);
            let s = Scheduler::new(granularity).schedule(&p, lanes);
            for (la, lane_a) in s.lanes.iter().enumerate() {
                for lane_b in s.lanes.iter().skip(la + 1) {
                    for &i in lane_a {
                        for &j in lane_b {
                            prop_assert!(
                                !conflicts(&p.entries[i], &p.entries[j], granularity),
                                "txs {i} and {j} conflict across lanes ({granularity:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lanes_preserve_block_order(descs in arb_descs(), lanes in 1usize..9) {
        let p = profile(&descs);
        let s = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        for lane in &s.lanes {
            for w in lane.windows(2) {
                prop_assert!(w[0] < w[1], "lane out of block order");
            }
        }
    }

    #[test]
    fn subgraphs_are_conflict_closed(descs in arb_descs()) {
        // Every conflicting pair must share a subgraph.
        let p = profile(&descs);
        let s = Scheduler::new(ConflictGranularity::Slot).schedule(&p, 4);
        let mut component = vec![usize::MAX; descs.len()];
        for (c, sg) in s.subgraphs.iter().enumerate() {
            for &i in &sg.txs {
                component[i] = c;
            }
        }
        for i in 0..descs.len() {
            for j in i + 1..descs.len() {
                if conflicts(&p.entries[i], &p.entries[j], ConflictGranularity::Slot) {
                    prop_assert_eq!(
                        component[i], component[j],
                        "conflicting txs {} and {} in different subgraphs", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn gas_lpt_never_worse_than_round_robin(descs in arb_descs(), lanes in 2usize..9) {
        let p = profile(&descs);
        let lpt = Scheduler::with_policy(ConflictGranularity::Account, AssignPolicy::GasLpt)
            .schedule(&p, lanes);
        let rr = Scheduler::with_policy(ConflictGranularity::Account, AssignPolicy::RoundRobin)
            .schedule(&p, lanes);
        prop_assert!(lpt.makespan_gas(&p) <= rr.makespan_gas(&p));
    }

    #[test]
    fn slot_granularity_never_coarser(descs in arb_descs()) {
        let p = profile(&descs);
        let account = Scheduler::new(ConflictGranularity::Account).schedule(&p, 4);
        let slot = Scheduler::new(ConflictGranularity::Slot).schedule(&p, 4);
        prop_assert!(slot.subgraphs.len() >= account.subgraphs.len());
        prop_assert!(slot.largest_subgraph_ratio() <= account.largest_subgraph_ratio() + 1e-9);
    }

    #[test]
    fn schedule_is_deterministic(descs in arb_descs(), lanes in 1usize..9) {
        let p = profile(&descs);
        let a = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        let b = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        prop_assert_eq!(a, b);
    }
}
