//! Property tests for the validator scheduler over randomly generated
//! footprints — the lane invariants that make parallel replay safe — and
//! for the restructured pipeline over randomly generated transfer blocks:
//! subgraph-granular dispatch replays identically to serial execution at
//! any pool width, and the early-abort protocol never fires on an honest
//! block.

use std::collections::HashMap;
use std::sync::Arc;

use blockpilot::baseline::execute_block_serially;
use blockpilot::block::{BlockProfile, TxProfile};
use blockpilot::core::{
    AssignPolicy, ConflictGranularity, DispatchPolicy, OccWsiConfig, OccWsiProposer,
    PipelineConfig, Proposal, Scheduler, ValidatorPipeline,
};
use blockpilot::evm::{BlockEnv, Transaction};
use blockpilot::state::WorldState;
use blockpilot::txpool::TxPool;
use blockpilot::types::{AccessKey, Address, BlockHash, RwSet, H256, U256};
use proptest::prelude::*;

/// A compact footprint description: which abstract keys each tx reads and
/// writes, plus its gas.
#[derive(Clone, Debug)]
struct TxDesc {
    reads: Vec<u8>,
    writes: Vec<u8>,
    gas: u64,
}

fn key(id: u8) -> AccessKey {
    // Spread keys over both accounts and slots so both granularities are
    // exercised: even ids are balances, odd ids are storage slots grouped
    // four-per-contract.
    if id % 2 == 0 {
        AccessKey::Balance(Address::from_index(id as u64))
    } else {
        AccessKey::Storage(
            Address::from_index(1000 + (id / 8) as u64),
            H256::from_low_u64(id as u64),
        )
    }
}

fn profile(descs: &[TxDesc]) -> BlockProfile {
    let entries = descs
        .iter()
        .map(|d| {
            let mut rw = RwSet::new();
            for &r in &d.reads {
                rw.record_read(key(r), 0);
            }
            for &w in &d.writes {
                rw.record_write(key(w), U256::ONE);
            }
            TxProfile::from_rw(&rw, d.gas)
        })
        .collect();
    BlockProfile { entries }
}

fn arb_descs() -> impl Strategy<Value = Vec<TxDesc>> {
    prop::collection::vec(
        (
            prop::collection::vec(0u8..24, 0..4),
            prop::collection::vec(0u8..24, 0..3),
            1_000u64..200_000,
        )
            .prop_map(|(reads, writes, gas)| TxDesc { reads, writes, gas }),
        0..60,
    )
}

fn conflicts(a: &TxProfile, b: &TxProfile, granularity: ConflictGranularity) -> bool {
    match granularity {
        ConflictGranularity::Slot => a.rw().conflicts_with(&b.rw()),
        ConflictGranularity::Account => a.rw().conflicts_with_account_level(&b.rw()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lanes_partition_the_block(descs in arb_descs(), lanes in 1usize..9) {
        let p = profile(&descs);
        let s = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        let mut seen = vec![false; descs.len()];
        for lane in &s.lanes {
            for &i in lane {
                prop_assert!(!seen[i], "tx {i} scheduled twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b), "some tx unscheduled");
    }

    #[test]
    fn no_conflicts_cross_lanes(descs in arb_descs(), lanes in 1usize..9) {
        for granularity in [ConflictGranularity::Account, ConflictGranularity::Slot] {
            let p = profile(&descs);
            let s = Scheduler::new(granularity).schedule(&p, lanes);
            for (la, lane_a) in s.lanes.iter().enumerate() {
                for lane_b in s.lanes.iter().skip(la + 1) {
                    for &i in lane_a {
                        for &j in lane_b {
                            prop_assert!(
                                !conflicts(&p.entries[i], &p.entries[j], granularity),
                                "txs {i} and {j} conflict across lanes ({granularity:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lanes_preserve_block_order(descs in arb_descs(), lanes in 1usize..9) {
        let p = profile(&descs);
        let s = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        for lane in &s.lanes {
            for w in lane.windows(2) {
                prop_assert!(w[0] < w[1], "lane out of block order");
            }
        }
    }

    #[test]
    fn subgraphs_are_conflict_closed(descs in arb_descs()) {
        // Every conflicting pair must share a subgraph.
        let p = profile(&descs);
        let s = Scheduler::new(ConflictGranularity::Slot).schedule(&p, 4);
        let mut component = vec![usize::MAX; descs.len()];
        for (c, sg) in s.subgraphs.iter().enumerate() {
            for &i in &sg.txs {
                component[i] = c;
            }
        }
        for i in 0..descs.len() {
            for j in i + 1..descs.len() {
                if conflicts(&p.entries[i], &p.entries[j], ConflictGranularity::Slot) {
                    prop_assert_eq!(
                        component[i], component[j],
                        "conflicting txs {} and {} in different subgraphs", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn gas_lpt_never_worse_than_round_robin(descs in arb_descs(), lanes in 2usize..9) {
        let p = profile(&descs);
        let lpt = Scheduler::with_policy(ConflictGranularity::Account, AssignPolicy::GasLpt)
            .schedule(&p, lanes);
        let rr = Scheduler::with_policy(ConflictGranularity::Account, AssignPolicy::RoundRobin)
            .schedule(&p, lanes);
        prop_assert!(lpt.makespan_gas(&p) <= rr.makespan_gas(&p));
    }

    #[test]
    fn slot_granularity_never_coarser(descs in arb_descs()) {
        let p = profile(&descs);
        let account = Scheduler::new(ConflictGranularity::Account).schedule(&p, 4);
        let slot = Scheduler::new(ConflictGranularity::Slot).schedule(&p, 4);
        prop_assert!(slot.subgraphs.len() >= account.subgraphs.len());
        prop_assert!(slot.largest_subgraph_ratio() <= account.largest_subgraph_ratio() + 1e-9);
    }

    #[test]
    fn schedule_is_deterministic(descs in arb_descs(), lanes in 1usize..9) {
        let p = profile(&descs);
        let a = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        let b = Scheduler::new(ConflictGranularity::Account).schedule(&p, lanes);
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Restructured-pipeline properties: real execution over generated blocks
// ---------------------------------------------------------------------------

/// Funded account universe for the generated transfer blocks.
const FUNDED: u64 = 24;

/// One raw transfer: uniform samples mapped onto Zipf-skewed endpoints.
#[derive(Clone, Debug)]
struct TransferDesc {
    from_raw: u16,
    to_raw: u16,
    amount: u64,
}

/// Maps a uniform sample onto a skewed account index in `1..=FUNDED`:
/// cubing the unit sample concentrates mass on the low (hot) accounts, so
/// generated blocks carry Zipf-like conflict chains through a few popular
/// senders/recipients — the shape that stresses subgraph dispatch.
fn zipf_index(raw: u16) -> u64 {
    let u = raw as f64 / (u16::MAX as f64 + 1.0);
    (u * u * u * FUNDED as f64) as u64 + 1
}

fn arb_transfers() -> impl Strategy<Value = Vec<TransferDesc>> {
    prop::collection::vec(
        (any::<u16>(), any::<u16>(), 0u64..1_000).prop_map(|(from_raw, to_raw, amount)| {
            TransferDesc {
                from_raw,
                to_raw,
                amount,
            }
        }),
        0..48,
    )
}

/// Builds the funded pre-state and the nonce-consistent transaction list
/// for a batch of raw transfers. Priority (gas price) descends in
/// generation order so the pool replays the generated order.
fn transfer_block(descs: &[TransferDesc]) -> (Arc<WorldState>, Vec<Transaction>) {
    let mut world = WorldState::new();
    for i in 1..=FUNDED {
        world.set_balance(Address::from_index(i), U256::from(1_000_000_000u64));
    }
    let mut nonces: HashMap<Address, u64> = HashMap::new();
    let n = descs.len() as u64;
    let txs = descs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let from = Address::from_index(zipf_index(d.from_raw));
            let to = Address::from_index(zipf_index(d.to_raw));
            let nonce = nonces.entry(from).or_insert(0);
            let tx = Transaction::transfer(from, to, U256::from(d.amount), *nonce, n - i as u64);
            *nonce += 1;
            tx
        })
        .collect();
    (Arc::new(world), txs)
}

/// Proposes the transfers as one block on `parent` (height 1).
fn propose_transfers(base: &Arc<WorldState>, txs: &[Transaction], parent: BlockHash) -> Proposal {
    let pool = TxPool::new();
    for tx in txs {
        pool.add(tx.clone());
    }
    let engine = OccWsiProposer::new(OccWsiConfig {
        threads: 2,
        env: BlockEnv {
            number: 1,
            ..BlockEnv::default()
        },
        ..OccWsiConfig::default()
    });
    engine.propose(&pool, Arc::clone(base), parent, 1)
}

proptest! {
    // Each case spins up real worker pools; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn subgraph_dispatch_replays_serial_execution_at_any_width(
        descs in arb_transfers(),
        workers in 1usize..=16,
        appliers in 1usize..4,
    ) {
        // Whatever the pool width, applier count, or conflict skew, the
        // restructured pipeline must reproduce the serial oracle's state
        // bit for bit — the lock-free slots and subgraph jobs reorder
        // execution, never its effect.
        let (base, txs) = transfer_block(&descs);
        let parent = BlockHash::from_low_u64(21);
        let proposal = propose_transfers(&base, &txs, parent);
        let env = BlockEnv { number: 1, ..BlockEnv::default() };
        let serial = execute_block_serially(&base, &env, &proposal.block.transactions)
            .expect("proposed blocks replay serially");

        let pipeline = ValidatorPipeline::new(PipelineConfig {
            workers,
            granularity: ConflictGranularity::Account,
            dispatch: DispatchPolicy::Subgraph,
            appliers,
            deferred_root: false,
        });
        pipeline.register_state(parent, Arc::clone(&base));
        let n = proposal.block.transactions.len();
        let outcome = pipeline.validate_block(proposal.block.clone());
        prop_assert!(outcome.is_valid(), "{:?}", outcome.result);
        prop_assert_eq!(outcome.executed_txs, n);
        prop_assert!(!outcome.aborted_early);
        prop_assert_eq!(
            outcome.post_state.expect("valid").state_root(),
            serial.post_state.state_root()
        );
        pipeline.shutdown();
    }

    #[test]
    fn early_abort_never_rejects_a_valid_block(
        descs in arb_transfers(),
        workers in 1usize..=16,
    ) {
        // The cancellation protocol (per-tx footprint checks on the
        // workers' clocks, first mismatch wins) must be invisible on honest
        // blocks under both dispatch granularities.
        let (base, txs) = transfer_block(&descs);
        let parent = BlockHash::from_low_u64(22);
        let proposal = propose_transfers(&base, &txs, parent);
        for dispatch in [DispatchPolicy::Subgraph, DispatchPolicy::StaticLanes] {
            let pipeline = ValidatorPipeline::new(PipelineConfig {
                workers,
                granularity: ConflictGranularity::Account,
                dispatch,
                appliers: 2,
                deferred_root: false,
            });
            pipeline.register_state(parent, Arc::clone(&base));
            let outcome = pipeline.validate_block(proposal.block.clone());
            prop_assert!(outcome.is_valid(), "{dispatch:?}: {:?}", outcome.result);
            prop_assert!(!outcome.aborted_early, "{dispatch:?} aborted an honest block");
            prop_assert_eq!(outcome.executed_txs, proposal.block.transactions.len());
            pipeline.shutdown();
        }
    }
}
