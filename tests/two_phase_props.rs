//! Property test: two-phase proposer commit is serial-replay equivalent.
//!
//! The two-phase commit path admits transactions under a tiny critical
//! section (WSI validation + version allocation) and publishes their write
//! sets outside it. For arbitrary mixes of transfers, counter bumps and
//! token moves at 1–16 worker threads, the block it seals must replay
//! serially to the exact sealed state root — the same witness the
//! coarse-lock path satisfies — and the two paths must agree on the root
//! for identical workloads.

use std::sync::Arc;

use blockpilot::baseline::execute_block_serially;
use blockpilot::core::{CommitPath, OccWsiConfig, OccWsiProposer};
use blockpilot::evm::{contracts, BlockEnv, Transaction};
use blockpilot::state::WorldState;
use blockpilot::txpool::TxPool;
use blockpilot::types::{Address, BlockHash, U256};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Action {
    Transfer { from: u8, to: u8, amount: u16 },
    Counter { from: u8 },
    Token { from: u8, to: u8, amount: u16 },
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..10, 0u8..10, 1u16..400).prop_map(|(from, to, amount)| Action::Transfer {
                from,
                to,
                amount
            }),
            (0u8..10).prop_map(|from| Action::Counter { from }),
            (0u8..10, 0u8..10, 1u16..400).prop_map(|(from, to, amount)| Action::Token {
                from,
                to,
                amount
            }),
        ],
        1..30,
    )
}

fn addr(i: u8) -> Address {
    Address::from_index(100 + i as u64)
}

fn world() -> WorldState {
    let mut w = WorldState::new();
    let counter = Address::from_index(500);
    let token = Address::from_index(501);
    w.set_code(counter, contracts::counter());
    w.set_code(token, contracts::token());
    for i in 0..10u8 {
        w.set_balance(addr(i), U256::from(1_000_000_000u64));
        w.set_storage(
            token,
            contracts::token_balance_slot(&addr(i)),
            U256::from(1_000_000u64),
        );
    }
    w
}

fn build_txs(actions: &[Action]) -> Vec<Transaction> {
    let counter = Address::from_index(500);
    let token = Address::from_index(501);
    let mut nonces = [0u64; 10];
    actions
        .iter()
        .enumerate()
        .map(|(i, action)| {
            let (from, to, gas_limit, data, value) = match action {
                Action::Transfer { from, to, amount } => (
                    *from,
                    addr(*to),
                    21_000,
                    Vec::new(),
                    U256::from(*amount as u64),
                ),
                Action::Counter { from } => (*from, counter, 200_000, Vec::new(), U256::ZERO),
                Action::Token { from, to, amount } => (
                    *from,
                    token,
                    300_000,
                    contracts::token_transfer_calldata(&addr(*to), U256::from(*amount as u64)),
                    U256::ZERO,
                ),
            };
            let nonce = nonces[from as usize];
            nonces[from as usize] += 1;
            Transaction {
                sender: addr(from),
                to: Some(to),
                value,
                nonce,
                gas_limit,
                gas_price: 1 + (i as u64 % 7),
                data,
            }
        })
        .collect()
}

fn propose(
    base: &Arc<WorldState>,
    txs: &[Transaction],
    threads: usize,
    path: CommitPath,
) -> blockpilot::core::Proposal {
    let pool = TxPool::new();
    for tx in txs {
        pool.add(tx.clone());
    }
    let proposer = OccWsiProposer::new(OccWsiConfig {
        threads,
        commit_path: path,
        ..OccWsiConfig::default()
    });
    let proposal = proposer.propose(&pool, Arc::clone(base), BlockHash::ZERO, 1);
    assert!(pool.is_empty(), "pool must drain");
    proposal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two-phase commit path is serializable at any thread count: the
    /// sealed block replays serially to the exact sealed state root.
    #[test]
    fn two_phase_is_serial_replay_equivalent(
        actions in arb_actions(),
        threads in 1usize..=16,
    ) {
        let base = Arc::new(world());
        let txs = build_txs(&actions);
        let proposal = propose(&base, &txs, threads, CommitPath::TwoPhase);

        prop_assert_eq!(proposal.block.tx_count(), txs.len());
        let replay = execute_block_serially(
            &base,
            &BlockEnv::default(),
            &proposal.block.transactions,
        )
        .expect("commit order must replay");
        prop_assert_eq!(
            replay.post_state.state_root(),
            proposal.block.header.state_root
        );
        prop_assert_eq!(replay.gas_used, proposal.block.header.gas_used);

        // Every worker's tally is accounted for.
        let per_worker: u64 = proposal.stats.workers.iter().map(|w| w.committed).sum();
        prop_assert_eq!(per_worker, proposal.stats.committed);
    }

    /// Two-phase and coarse-lock commit the same transaction *set*; both
    /// orders are serializable, so both roots replay — and on a
    /// single-thread proposer the block is identical.
    #[test]
    fn two_phase_and_coarse_agree(actions in arb_actions()) {
        let base = Arc::new(world());
        let txs = build_txs(&actions);
        let two_phase = propose(&base, &txs, 1, CommitPath::TwoPhase);
        let coarse = propose(&base, &txs, 1, CommitPath::CoarseLock);
        prop_assert_eq!(
            two_phase.block.header.state_root,
            coarse.block.header.state_root
        );
        prop_assert_eq!(two_phase.block.transactions, coarse.block.transactions);
    }
}
