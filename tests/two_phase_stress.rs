//! Stress test: snapshot readers never observe a partially published
//! write set.
//!
//! The two-phase commit publishes multi-key write sets *outside* the
//! admission lock; the version gate is what keeps that sound — a snapshot
//! at version `v` blocks until every version ≤ `v` has finished
//! publishing. This test drives the same register → publish → open
//! protocol the proposer uses from several writer threads, with every
//! version writing the *same* multi-key set, while reader threads
//! continuously take gated snapshots and check that all keys agree on a
//! single version. A torn (half-published) write set would show up as two
//! keys reporting different versions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use blockpilot::concurrent::{VersionAllocator, VersionGate};
use blockpilot::state::{MultiVersionState, WorldState};
use blockpilot::types::{AccessKey, Address, RwSet, H256, U256};

const WRITERS: usize = 4;
const READERS: usize = 3;
const TOTAL_VERSIONS: u64 = 400;
const KEYS: u64 = 8;

fn slot(k: u64) -> AccessKey {
    AccessKey::Storage(Address::from_index(1), H256::from_low_u64(k))
}

#[test]
fn snapshot_readers_never_observe_partial_write_sets() {
    let gate = Arc::new(VersionGate::new());
    let mv = MultiVersionState::with_gate(Arc::new(WorldState::new()), WRITERS, Arc::clone(&gate));
    let versions = VersionAllocator::new();
    let admit = Mutex::new(());
    let observed = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            s.spawn(|| loop {
                // Phase A: under the admission lock, register the version
                // with the gate *before* it becomes discoverable.
                let version = {
                    let _admit = admit.lock().unwrap();
                    if versions.current() >= TOTAL_VERSIONS {
                        break;
                    }
                    gate.register(versions.current() + 1);
                    versions.allocate()
                };
                // Phase B: publish the multi-key write set off-lock, then
                // open the gate. Every key carries the version number, so
                // a consistent snapshot sees one value everywhere.
                let mut rw = RwSet::new();
                for k in 0..KEYS {
                    rw.record_write(slot(k), U256::from(version));
                }
                mv.commit_writes(&rw.writes, version);
                gate.open(version);
            });
        }

        for _ in 0..READERS {
            s.spawn(|| loop {
                let version = versions.current();
                if version == 0 {
                    std::hint::spin_loop();
                    continue;
                }
                // A gated snapshot must block until every version ≤
                // `version` is fully published.
                mv.wait_visible(version);
                let (first_value, first_at) = mv.read_at(&slot(0), version);
                for k in 1..KEYS {
                    let (value, at) = mv.read_at(&slot(k), version);
                    assert_eq!(
                        (value, at),
                        (first_value, first_at),
                        "torn write set at snapshot {version}: slot 0 is \
                         version {first_at}, slot {k} is version {at}"
                    );
                }
                // Each key's newest write ≤ `version` is `version` itself
                // (every version writes every key).
                assert_eq!(first_at, version, "snapshot {version} saw a stale set");
                assert_eq!(first_value, U256::from(version));
                observed.fetch_max(version, Ordering::Relaxed);
                if version >= TOTAL_VERSIONS {
                    break;
                }
            });
        }
    });

    assert_eq!(versions.current(), TOTAL_VERSIONS);
    assert_eq!(gate.pending(), 0, "every registered version must open");
    assert_eq!(observed.load(Ordering::Relaxed), TOTAL_VERSIONS);
    // The final materialized state carries the last version in every slot.
    let final_state = mv.materialize(TOTAL_VERSIONS);
    for k in 0..KEYS {
        assert_eq!(
            final_state.storage(&Address::from_index(1), &H256::from_low_u64(k)),
            U256::from(TOTAL_VERSIONS)
        );
    }
}
