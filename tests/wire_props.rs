//! Property test: real proposed blocks survive the RLP wire roundtrip
//! bit-exactly (hash, transactions and profile), across workload mixes.

use std::sync::Arc;

use blockpilot::block::{decode_block, encode_block};
use blockpilot::core::{OccWsiConfig, OccWsiProposer};
use blockpilot::txpool::TxPool;
use blockpilot::types::BlockHash;
use blockpilot::workload::{TxMix, WorkloadConfig, WorkloadGen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn proposed_blocks_roundtrip_on_the_wire(
        seed in any::<u64>(),
        transfer in 1u32..10,
        token in 0u32..10,
        amm in 0u32..5,
    ) {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            seed,
            accounts: 80,
            txs_per_block: 20,
            tx_jitter: 4,
            mix: TxMix {
                transfer: transfer as f64,
                token: token as f64,
                amm: amm as f64,
                blind: 0.5,
                mint: 0.0,
            },
            ..WorkloadConfig::default()
        });
        let base = Arc::new(gen.genesis_state());
        let pool = TxPool::new();
        for tx in gen.next_block_txs() {
            pool.add(tx);
        }
        let proposer = OccWsiProposer::new(OccWsiConfig {
            threads: 2,
            env: gen.block_env(1),
            ..OccWsiConfig::default()
        });
        let block = proposer.propose(&pool, base, BlockHash::ZERO, 1).block;

        let bytes = encode_block(&block);
        let decoded = decode_block(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded.hash(), block.hash());
        prop_assert_eq!(&decoded.transactions, &block.transactions);
        prop_assert_eq!(&decoded.profile, &block.profile);
        // Canonical: re-encoding reproduces identical bytes.
        prop_assert_eq!(encode_block(&decoded), bytes);
    }
}
